#include "dist/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace sidco::dist {

namespace {

std::string trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(first, last - first + 1));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(trim(s.substr(start)));
      break;
    }
    out.push_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

struct BenchmarkToken {
  std::string_view token;
  nn::Benchmark benchmark;
};
constexpr BenchmarkToken kBenchmarkTokens[] = {
    {"resnet20", nn::Benchmark::kResNet20},
    {"vgg16", nn::Benchmark::kVgg16},
    {"resnet50", nn::Benchmark::kResNet50},
    {"vgg19", nn::Benchmark::kVgg19},
    {"lstm-ptb", nn::Benchmark::kLstmPtb},
    {"lstm-an4", nn::Benchmark::kLstmAn4},
};

struct SchemeToken {
  std::string_view token;
  core::Scheme scheme;
};
constexpr SchemeToken kSchemeTokens[] = {
    {"none", core::Scheme::kNone},
    {"topk", core::Scheme::kTopK},
    {"dgc", core::Scheme::kDgc},
    {"redsync", core::Scheme::kRedSync},
    {"gaussiank", core::Scheme::kGaussianKSgd},
    {"randomk", core::Scheme::kRandomK},
    {"sidco-e", core::Scheme::kSidcoExponential},
    {"sidco-gp", core::Scheme::kSidcoGammaPareto},
    {"sidco-p", core::Scheme::kSidcoPareto},
};

nn::Benchmark parse_benchmark(const std::string& token) {
  for (const auto& [t, b] : kBenchmarkTokens) {
    if (token == t) return b;
  }
  util::check_fail("unknown benchmark token: " + token);
}

std::string_view benchmark_token(nn::Benchmark benchmark) {
  for (const auto& [t, b] : kBenchmarkTokens) {
    if (benchmark == b) return t;
  }
  return "unknown";
}

core::Scheme parse_scheme(const std::string& token) {
  for (const auto& [t, s] : kSchemeTokens) {
    if (token == t) return s;
  }
  util::check_fail("unknown scheme token: " + token);
}

std::string_view scheme_token(core::Scheme scheme) {
  for (const auto& [t, s] : kSchemeTokens) {
    if (scheme == s) return t;
  }
  return "unknown";
}

Topology parse_topology(const std::string& token) {
  if (token == "allgather" || token == "allreduce") {
    return Topology::kAllreduce;
  }
  if (token == "ps" || token == "parameter-server") {
    return Topology::kParameterServer;
  }
  util::check_fail("unknown topology token: " + token);
}

double parse_double(const std::string& token) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    util::check_fail("malformed number: " + token);
  }
  util::check(consumed == token.size(), "trailing characters in number");
  return value;
}

std::size_t parse_size(const std::string& token) {
  const double value = parse_double(token);
  util::check(value >= 0.0 && value == std::floor(value),
              "expected a non-negative integer");
  return static_cast<std::size_t>(value);
}

/// `<bandwidth>gbps` with an optional `@<latency>us` suffix, e.g. "10gbps"
/// (25 us default) or "1gbps@50us".
NetworkProfile parse_network(const std::string& token) {
  NetworkProfile profile{.name = token, .config = NetworkConfig{}};
  std::string bw_part = token;
  if (const auto at = token.find('@'); at != std::string::npos) {
    bw_part = token.substr(0, at);
    std::string lat_part = token.substr(at + 1);
    util::check(lat_part.size() > 2 &&
                    lat_part.compare(lat_part.size() - 2, 2, "us") == 0,
                "network latency must end in 'us'");
    profile.config.latency_us =
        parse_double(lat_part.substr(0, lat_part.size() - 2));
  }
  util::check(bw_part.size() > 4 &&
                  bw_part.compare(bw_part.size() - 4, 4, "gbps") == 0,
              "network bandwidth must end in 'gbps'");
  profile.config.bandwidth_gbps =
      parse_double(bw_part.substr(0, bw_part.size() - 4));
  util::check(profile.config.bandwidth_gbps > 0.0,
              "network bandwidth must be positive");
  util::check(profile.config.latency_us >= 0.0,
              "network latency must be non-negative");
  return profile;
}

bool parse_on_off(const std::string& token) {
  if (token == "on" || token == "true" || token == "1") return true;
  if (token == "off" || token == "false" || token == "0") return false;
  util::check_fail("expected on/off: " + token);
}

FailurePolicy parse_failure_policy(const std::string& token) {
  if (token == "failfast" || token == "fail-fast") {
    return FailurePolicy::kFailFast;
  }
  if (token == "evict") return FailurePolicy::kEvict;
  util::check_fail("unknown failure policy token: " + token);
}

std::string format_g(double value, int precision = 9) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

/// Statically replays a churn schedule against the spec's worker and
/// iteration counts so an infeasible schedule fails at parse time with the
/// offending term, not mid-fleet.
void validate_churn_feasibility(const ChurnSchedule& churn,
                                std::size_t workers, std::size_t iterations) {
  std::size_t active = workers;
  std::size_t departed = 0;
  for (const ChurnEvent& event : churn.events) {
    if (event.round >= iterations) {
      util::check_fail("churn schedule '" + churn.name + "': round " +
                       std::to_string(event.round) +
                       " is outside the session (iterations = " +
                       std::to_string(iterations) + ")");
    }
    switch (event.kind) {
      case ChurnEvent::Kind::kLeave:
        if (active < 2) {
          util::check_fail("churn schedule '" + churn.name +
                           "': a leave would empty the tenant");
        }
        --active;
        ++departed;
        break;
      case ChurnEvent::Kind::kJoin:
        ++active;
        break;
      case ChurnEvent::Kind::kRejoin:
        if (departed < 1) {
          util::check_fail("churn schedule '" + churn.name +
                           "': rejoin without a departed worker");
        }
        --departed;
        ++active;
        break;
    }
  }
}

}  // namespace

Engine parse_engine(const std::string& token) {
  if (token == "simulated") return Engine::kSimulated;
  if (token == "threads") return Engine::kThreads;
  if (token == "sockets") return Engine::kSockets;
  util::check_fail("unknown engine token: " + token);
}

FaultProfile parse_fault_profile(const std::string& token) {
  FaultProfile profile{.name = token, .config = {}};
  if (token == "none") return profile;
  double sum = 0.0;
  std::size_t start = 0;
  while (start <= token.size()) {
    auto plus = token.find('+', start);
    if (plus == std::string::npos) plus = token.size();
    const std::string term = token.substr(start, plus - start);
    start = plus + 1;
    const auto colon = term.find(':');
    if (colon == std::string::npos) {
      util::check_fail("fault term must be 'kind:probability': " + term);
    }
    const std::string kind = term.substr(0, colon);
    const double p = parse_double(term.substr(colon + 1));
    if (p <= 0.0 || p > 1.0) {
      util::check_fail("fault probability must be in (0, 1]: " + term);
    }
    sum += p;
    if (kind == "drop") {
      profile.config.drop = p;
    } else if (kind == "delay") {
      profile.config.delay = p;
    } else if (kind == "dup") {
      profile.config.duplicate = p;
    } else if (kind == "reorder") {
      profile.config.reorder = p;
    } else if (kind == "corrupt") {
      profile.config.corrupt = p;
    } else {
      util::check_fail("unknown fault kind (want drop|delay|dup|reorder|"
                       "corrupt): " +
                       kind);
    }
  }
  util::check(sum <= 1.0 + 1e-9, "fault probabilities must sum to <= 1");
  return profile;
}

ChurnSchedule parse_churn_schedule(const std::string& token) {
  ChurnSchedule schedule{.name = token, .events = {}};
  if (token == "none") return schedule;
  util::check(!token.empty(), "churn token must not be empty");
  std::size_t start = 0;
  while (start <= token.size()) {
    auto plus = token.find('+', start);
    if (plus == std::string::npos) plus = token.size();
    const std::string term = token.substr(start, plus - start);
    start = plus + 1;
    const auto at = term.find('@');
    if (at == std::string::npos) {
      util::check_fail("churn term must be 'kind@round': " + term);
    }
    const std::string kind = term.substr(0, at);
    ChurnEvent event;
    if (kind == "join") {
      event.kind = ChurnEvent::Kind::kJoin;
    } else if (kind == "leave") {
      event.kind = ChurnEvent::Kind::kLeave;
    } else if (kind == "rejoin") {
      event.kind = ChurnEvent::Kind::kRejoin;
    } else {
      util::check_fail("unknown churn kind (want join|leave|rejoin): " + term);
    }
    const std::string round = term.substr(at + 1);
    std::size_t consumed = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(round, &consumed);
    } catch (const std::exception&) {
      util::check_fail("churn term has a malformed round: " + term);
    }
    if (consumed != round.size() || round.empty() || round.front() == '-') {
      util::check_fail("churn term has a malformed round: " + term);
    }
    event.round = static_cast<std::size_t>(value);
    if (!schedule.events.empty() && event.round < schedule.events.back().round) {
      util::check_fail("churn events must be in round order: " + token);
    }
    schedule.events.push_back(event);
  }
  return schedule;
}

ResidualHandoff parse_residual_handoff(const std::string& token) {
  if (token == "zero") return ResidualHandoff::kZeroInit;
  if (token == "warm") return ResidualHandoff::kWarmStart;
  util::check_fail("unknown handoff token (want zero|warm): " + token);
}

std::string_view residual_handoff_name(ResidualHandoff handoff) {
  return handoff == ResidualHandoff::kZeroInit ? "zero" : "warm";
}

std::vector<double> resolve_device_profile(const DeviceProfile& profile,
                                           std::size_t workers) {
  util::check(workers >= 1, "device profile needs >= 1 worker");
  if (profile.name == "homogeneous") return {};
  std::vector<double> scale(workers, 1.0);
  if (profile.name == "one-straggler-2x") {
    scale[0] = 2.0;
  } else if (profile.name == "one-straggler-4x") {
    scale[0] = 4.0;
  } else if (profile.name == "linear-ramp") {
    // Worker 0 at full speed, the last worker 2x slower.
    for (std::size_t w = 0; w < workers; ++w) {
      scale[w] = workers == 1
                     ? 1.0
                     : 1.0 + static_cast<double>(w) /
                                 static_cast<double>(workers - 1);
    }
  } else {
    util::check_fail("unknown device profile: " + profile.name);
  }
  return scale;
}

MatrixSpec parse_matrix_spec(std::string_view text) {
  MatrixSpec spec;
  std::set<std::string> seen_keys;
  // Which fleet keys appeared, so a fleet knob without a `tenants` axis is
  // rejected with the offending key (it would otherwise silently do nothing).
  std::vector<std::string> fleet_keys;
  std::istringstream in{std::string(text)};
  std::string raw_line;
  while (std::getline(in, raw_line)) {
    std::string line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    util::check(eq != std::string::npos,
                "scenario spec lines must be 'key = value[, value...]'");
    const std::string key = trim(line.substr(0, eq));
    if (!seen_keys.insert(key).second) {
      util::check_fail("duplicate scenario key: " + key);
    }
    const std::vector<std::string> values = split(line.substr(eq + 1), ',');
    if (values.empty() || values.front().empty()) {
      util::check_fail("scenario key '" + key + "' needs at least one value");
    }

    const auto single = [&]() -> const std::string& {
      if (values.size() != 1) {
        util::check_fail("scenario key '" + key + "' takes a single value");
      }
      return values.front();
    };

    if (key == "workers") {
      spec.workers = parse_size(single());
    } else if (key == "iterations") {
      spec.iterations = parse_size(single());
    } else if (key == "eval_every") {
      spec.eval_every = parse_size(single());
    } else if (key == "eval_batches") {
      spec.eval_batches = parse_size(single());
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_size(single()));
    } else if (key == "engine") {
      spec.engine = parse_engine(single());
    } else if (key == "channel_capacity") {
      spec.channel_capacity = parse_size(single());
      util::check(spec.channel_capacity >= 1, "channel_capacity must be >= 1");
    } else if (key == "fault_seed") {
      spec.fault_seed = static_cast<std::uint64_t>(parse_size(single()));
    } else if (key == "failure") {
      spec.failure = parse_failure_policy(single());
    } else if (key == "deadline") {
      spec.deadline = parse_double(single());
      util::check(spec.deadline >= 0.0, "deadline must be non-negative");
    } else if (key == "benchmark") {
      spec.benchmarks.clear();
      for (const auto& v : values) spec.benchmarks.push_back(parse_benchmark(v));
    } else if (key == "scheme") {
      spec.schemes.clear();
      for (const auto& v : values) spec.schemes.push_back(parse_scheme(v));
    } else if (key == "ratio") {
      spec.ratios.clear();
      for (const auto& v : values) spec.ratios.push_back(parse_double(v));
    } else if (key == "topology") {
      spec.topologies.clear();
      for (const auto& v : values) spec.topologies.push_back(parse_topology(v));
    } else if (key == "network") {
      spec.networks.clear();
      for (const auto& v : values) spec.networks.push_back(parse_network(v));
    } else if (key == "device") {
      spec.devices.clear();
      for (const auto& v : values) {
        // Resolve now with a representative count so unknown names fail at
        // parse time, not mid-matrix.
        (void)resolve_device_profile({.name = v}, 2);
        spec.devices.push_back({.name = v});
      }
    } else if (key == "error_feedback") {
      spec.error_feedback.clear();
      for (const auto& v : values) spec.error_feedback.push_back(parse_on_off(v));
    } else if (key == "staleness") {
      spec.staleness.clear();
      for (const auto& v : values) spec.staleness.push_back(parse_size(v));
    } else if (key == "chunks") {
      spec.chunks.clear();
      for (const auto& v : values) {
        const std::size_t c = parse_size(v);
        util::check(c >= 1, "chunks must be >= 1");
        spec.chunks.push_back(c);
      }
    } else if (key == "fault") {
      spec.faults.clear();
      for (const auto& v : values) spec.faults.push_back(parse_fault_profile(v));
    } else if (key == "autotune") {
      spec.autotune.clear();
      for (const auto& v : values) {
        spec.autotune.push_back(core::parse_autotune_mode(v));
      }
    } else if (key == "autotune_min") {
      spec.autotune_base.min_ratio = parse_double(single());
    } else if (key == "autotune_max") {
      spec.autotune_base.max_ratio = parse_double(single());
    } else if (key == "autotune_gof_poor") {
      spec.autotune_base.gof_poor = parse_double(single());
    } else if (key == "autotune_gof_good") {
      spec.autotune_base.gof_good = parse_double(single());
    } else if (key == "tenants") {
      fleet_keys.push_back(key);
      spec.tenants.clear();
      for (const auto& v : values) {
        const std::size_t n = parse_size(v);
        util::check(n >= 1, "tenants values must be >= 1");
        spec.tenants.push_back(n);
      }
    } else if (key == "churn") {
      fleet_keys.push_back(key);
      spec.churn.clear();
      for (const auto& v : values) spec.churn.push_back(parse_churn_schedule(v));
    } else if (key == "bandwidth_trace") {
      fleet_keys.push_back(key);
      spec.traces.clear();
      for (const auto& v : values) {
        spec.traces.push_back(parse_bandwidth_trace(v));
      }
    } else if (key == "tenant_weights") {
      fleet_keys.push_back(key);
      spec.tenant_weights.clear();
      for (const std::string& w : split(single(), ':')) {
        const double weight = parse_double(w);
        util::check(weight > 0.0, "tenant weights must be positive");
        spec.tenant_weights.push_back(weight);
      }
    } else if (key == "handoff") {
      fleet_keys.push_back(key);
      spec.handoff = parse_residual_handoff(single());
    } else {
      util::check_fail("unknown scenario key: " + key);
    }
  }
  util::check(spec.workers >= 1, "scenario matrix needs >= 1 worker");
  util::check(spec.iterations >= 1, "scenario matrix needs >= 1 iteration");
  for (const FaultProfile& fault : spec.faults) {
    util::check(fault.name == "none" || spec.engine != Engine::kSimulated,
                "fault injection needs a real engine (threads or sockets); "
                "the simulated engine has no wire to break");
  }
  for (core::AutotuneMode mode : spec.autotune) {
    // Fail on inconsistent controller bounds at parse time, not mid-matrix.
    core::AutotuneConfig probe = spec.autotune_base;
    probe.mode = mode;
    core::validate_autotune_config(probe);
  }
  if (spec.tenants.empty()) {
    if (!fleet_keys.empty() && fleet_keys.front() != "tenants") {
      util::check_fail("scenario key '" + fleet_keys.front() +
                       "' needs a 'tenants' axis (fleet specs only)");
    }
  } else {
    // The fleet scheduler replays the deterministic simulated engine round
    // by round over a shared link; everything it cannot model fails here
    // with the reason, not mid-fleet.
    util::check(spec.engine == Engine::kSimulated,
                "fleet specs require the simulated engine (the fair-share "
                "link is modeled, not real)");
    for (Topology topology : spec.topologies) {
      util::check(topology == Topology::kAllreduce,
                  "fleet specs support the allgather topology only");
    }
    for (const DeviceProfile& device : spec.devices) {
      util::check(device.name == "homogeneous",
                  "fleet specs require homogeneous devices (per-worker speed "
                  "profiles do not survive elastic membership)");
    }
    for (std::size_t chunk : spec.chunks) {
      util::check(chunk == 1, "fleet specs require overlap_chunks == 1");
    }
    for (const ChurnSchedule& churn : spec.churn) {
      validate_churn_feasibility(churn, spec.workers, spec.iterations);
    }
  }
  return spec;
}

std::vector<Scenario> expand(const MatrixSpec& spec) {
  std::vector<Scenario> cells;
  for (nn::Benchmark benchmark : spec.benchmarks) {
    for (core::Scheme scheme : spec.schemes) {
      for (double ratio : spec.ratios) {
        for (Topology topology : spec.topologies) {
          for (const NetworkProfile& network : spec.networks) {
            for (const DeviceProfile& device : spec.devices) {
              for (bool ec : spec.error_feedback) {
                for (std::size_t stale : spec.staleness) {
                  for (std::size_t chunk : spec.chunks) {
                   for (const FaultProfile& fault : spec.faults) {
                   for (core::AutotuneMode autotune : spec.autotune) {
                    Scenario cell;
                    cell.config.benchmark = benchmark;
                    cell.config.scheme = scheme;
                    cell.config.target_ratio = ratio;
                    cell.config.workers = spec.workers;
                    cell.config.iterations = spec.iterations;
                    cell.config.eval_every = spec.eval_every;
                    cell.config.eval_batches = spec.eval_batches;
                    cell.config.seed = spec.seed;
                    cell.config.error_feedback = ec;
                    cell.config.topology = topology;
                    cell.config.staleness_bound =
                        topology == Topology::kParameterServer ? stale : 0;
                    cell.config.overlap_chunks = chunk;
                    cell.config.network = network.config;
                    cell.config.device = Device::kGpuModel;
                    cell.config.worker_time_scale =
                        resolve_device_profile(device, spec.workers);
                    cell.config.engine = spec.engine;
                    cell.config.channel_capacity = spec.channel_capacity;
                    cell.config.fault = fault.config;
                    cell.config.fault.seed = spec.fault_seed;
                    cell.config.on_worker_failure = spec.failure;
                    cell.config.deadline_seconds = spec.deadline;
                    cell.config.autotune = spec.autotune_base;
                    cell.config.autotune.mode = autotune;
                    std::ostringstream name;
                    name << benchmark_token(benchmark) << '/'
                         << scheme_token(scheme) << "/r" << format_g(ratio, 6)
                         << '/' << topology_name(topology) << '/'
                         << network.name << '/' << device.name << "/ec"
                         << (ec ? 1 : 0) << "/s" << stale << "/c" << chunk;
                    // Simulated cells keep their historical names so the
                    // committed goldens stay valid; every other engine gets
                    // its name suffixed so each engine is a distinct golden
                    // universe.  Keying on the engine value (not an
                    // enumerated allowlist) means an engine override — e.g.
                    // run_scenarios --engine sockets — can never collide
                    // with another engine's goldens.
                    if (spec.engine != Engine::kSimulated) {
                      name << '/' << engine_name(spec.engine);
                    }
                    // Like the engine suffix: a faulted cell is its own
                    // golden universe, and the clean cell keeps its
                    // historical name.
                    if (fault.name != "none") {
                      name << '/' << fault.name;
                    }
                    // Same again for autotuned cells: off cells keep their
                    // historical (and byte-stable) names.
                    if (autotune != core::AutotuneMode::kOff) {
                      name << "/at-" << core::autotune_mode_name(autotune);
                    }
                    cell.name = name.str();
                    cells.push_back(std::move(cell));
                   }
                   }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  if (spec.tenants.empty()) return cells;

  // Fleet specs: the fleet axes nest innermost (tenants, then churn, then
  // trace), each cell suffixed into its own golden universe.  The suffix is
  // unconditional — even a 1-tenant/none/flat fleet cell names itself apart
  // from the standalone cell it matches bit-for-bit, so the two universes
  // can never collide in one golden file.
  std::vector<Scenario> fleet_cells;
  fleet_cells.reserve(cells.size() * spec.tenants.size() * spec.churn.size() *
                      spec.traces.size());
  for (const Scenario& base : cells) {
    for (std::size_t tenants : spec.tenants) {
      for (const ChurnSchedule& churn : spec.churn) {
        for (const BandwidthTrace& trace : spec.traces) {
          Scenario cell = base;
          FleetCell fleet;
          fleet.tenants = tenants;
          fleet.weights.resize(tenants);
          for (std::size_t t = 0; t < tenants; ++t) {
            fleet.weights[t] =
                spec.tenant_weights.empty()
                    ? 1.0
                    : spec.tenant_weights[t % spec.tenant_weights.size()];
          }
          fleet.churn = churn;
          fleet.trace = trace;
          fleet.handoff = spec.handoff;
          cell.name = base.name + "/fleet-t" + std::to_string(tenants) + "/" +
                      churn.name + "/" + trace.name;
          cell.fleet = std::move(fleet);
          fleet_cells.push_back(std::move(cell));
        }
      }
    }
  }
  return fleet_cells;
}

ScenarioMetrics metrics_from_session(std::string name,
                                     const SessionResult& result) {
  ScenarioMetrics metrics;
  metrics.name = std::move(name);
  metrics.final_loss = result.final_loss;
  metrics.final_quality = result.final_quality;
  double fraction = 0.0;
  for (const IterationRecord& it : result.iterations) {
    fraction += it.achieved_ratio;
  }
  metrics.mean_selected_fraction =
      result.iterations.empty()
          ? 0.0
          : fraction / static_cast<double>(result.iterations.size());
  metrics.simulated_wall_seconds = result.total_modeled_seconds;
  metrics.wire_bytes = result.total_wire_bytes;
  metrics.effective_ratio = result.effective_wire_ratio();
  metrics.mean_staleness = result.mean_staleness();
  metrics.staleness_histogram = result.staleness_histogram;
  metrics.measured_wall_seconds = result.measured_wall_seconds;
  metrics.measured_compute_seconds = result.measured_compute_seconds;
  metrics.measured_comm_seconds = result.measured_comm_seconds;
  return metrics;
}

ScenarioMetrics run_scenario(const Scenario& scenario) {
  if (scenario.fleet.has_value()) {
    util::check_fail("fleet cell '" + scenario.name +
                     "' needs the multi-tenant scheduler: run it through "
                     "sched::run_cell / sched::run_matrix");
  }
  SessionConfig config = scenario.config;
  config.device = Device::kGpuModel;  // keep the event timeline deterministic
  const SessionResult result = run_session(config);
  return metrics_from_session(scenario.name, result);
}

std::vector<ScenarioMetrics> run_matrix(const MatrixSpec& spec) {
  std::vector<ScenarioMetrics> out;
  for (const Scenario& cell : expand(spec)) {
    out.push_back(run_scenario(cell));
  }
  return out;
}

std::string format_metrics(std::span<const ScenarioMetrics> metrics,
                           bool include_measured) {
  std::ostringstream out;
  for (const ScenarioMetrics& m : metrics) {
    out << m.name << " loss=" << format_g(m.final_loss)
        << " quality=" << format_g(m.final_quality)
        << " frac=" << format_g(m.mean_selected_fraction)
        << " wall=" << format_g(m.simulated_wall_seconds)
        << " bytes=" << m.wire_bytes
        << " eff=" << format_g(m.effective_ratio)
        << " mean_stale=" << format_g(m.mean_staleness);
    // Fleet-only field: absent lines keep every pre-fleet golden byte-stable.
    if (m.jain >= 0.0) out << " jain=" << format_g(m.jain);
    out << " stale=";
    for (std::size_t s = 0; s < m.staleness_histogram.size(); ++s) {
      if (s > 0) out << '|';
      out << m.staleness_histogram[s];
    }
    if (include_measured) {
      out << " mwall=" << format_g(m.measured_wall_seconds)
          << " mcomp=" << format_g(m.measured_compute_seconds)
          << " mcomm=" << format_g(m.measured_comm_seconds);
    }
    out << '\n';
  }
  return out.str();
}

namespace {

struct GoldenCell {
  ScenarioMetrics metrics;
  bool matched = false;
};

/// Numeric conversion for golden fields: a malformed token throws a
/// CheckError naming the key and the offending text, instead of leaking a
/// bare std::invalid_argument/std::out_of_range from std::stod with no
/// context about which field of which line broke.
double golden_number(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::exception&) {
    util::check_fail("golden field '" + key + "': malformed number '" + value +
                     "'");
  }
  if (consumed != value.size()) {
    util::check_fail("golden field '" + key + "': trailing characters in '" +
                     value + "'");
  }
  return out;
}

/// Like golden_number for non-negative integer fields.  std::stoull alone
/// would silently wrap "-3" to a huge count, so negatives are rejected.
std::size_t golden_count(const std::string& key, const std::string& value) {
  if (value.empty() || value.front() == '-') {
    util::check_fail("golden field '" + key +
                     "': expected a non-negative integer, got '" + value + "'");
  }
  std::size_t consumed = 0;
  unsigned long long out = 0;
  try {
    out = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    util::check_fail("golden field '" + key + "': malformed count '" + value +
                     "'");
  }
  if (consumed != value.size()) {
    util::check_fail("golden field '" + key + "': trailing characters in '" +
                     value + "'");
  }
  return static_cast<std::size_t>(out);
}

/// Parses one golden line back into metrics; returns false on structurally
/// malformed lines (no name, a token without '=', an unknown key) and throws
/// CheckError — with the key and token named — on malformed numeric fields.
/// Either way the caller reports the line as a diff.
bool parse_golden_line(const std::string& line, ScenarioMetrics& out) {
  std::istringstream in(line);
  if (!(in >> out.name)) return false;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "loss") {
      out.final_loss = golden_number(key, value);
    } else if (key == "quality") {
      out.final_quality = golden_number(key, value);
    } else if (key == "frac") {
      out.mean_selected_fraction = golden_number(key, value);
    } else if (key == "wall") {
      out.simulated_wall_seconds = golden_number(key, value);
    } else if (key == "bytes") {
      out.wire_bytes = golden_count(key, value);
    } else if (key == "eff") {
      out.effective_ratio = golden_number(key, value);
    } else if (key == "mean_stale") {
      out.mean_staleness = golden_number(key, value);
    } else if (key == "jain") {
      out.jain = golden_number(key, value);
    } else if (key == "mwall") {
      // Measured-seconds columns: parsed for round-tripping, never
      // golden-compared (hardware time is not reproducible).
      out.measured_wall_seconds = golden_number(key, value);
    } else if (key == "mcomp") {
      out.measured_compute_seconds = golden_number(key, value);
    } else if (key == "mcomm") {
      out.measured_comm_seconds = golden_number(key, value);
    } else if (key == "stale") {
      out.staleness_histogram.clear();
      for (const std::string& bin : split(value, '|')) {
        out.staleness_histogram.push_back(golden_count(key, bin));
      }
    } else {
      return false;
    }
  }
  return true;
}

bool within_rel(double fresh, double golden, double rel) {
  const double scale = std::max(std::abs(fresh), std::abs(golden));
  return std::abs(fresh - golden) <= rel * scale + 1e-9;
}

std::size_t histogram_total(const std::vector<std::size_t>& histogram) {
  std::size_t total = 0;
  for (std::size_t c : histogram) total += c;
  return total;
}

}  // namespace

GoldenReport compare_with_golden(std::span<const ScenarioMetrics> metrics,
                                 std::string_view golden_text,
                                 const GoldenTolerance& tolerance) {
  GoldenReport report;
  std::map<std::string, GoldenCell> golden;
  std::istringstream in{std::string(golden_text)};
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    ScenarioMetrics cell;
    bool parsed = false;
    try {
      parsed = parse_golden_line(line, cell);
    } catch (const util::CheckError& err) {
      report.diffs.push_back(std::string("malformed golden line (") +
                             err.what() + "): " + line);
      continue;
    }
    if (!parsed) {
      report.diffs.push_back("malformed golden line: " + line);
      continue;
    }
    // Copy the key out first: the RHS is sequenced before the subscript and
    // would otherwise move the name away.
    const std::string name = cell.name;
    golden[name] = {.metrics = std::move(cell)};
  }

  for (const ScenarioMetrics& fresh : metrics) {
    const auto it = golden.find(fresh.name);
    if (it == golden.end()) {
      report.diffs.push_back("cell missing from golden: " + fresh.name);
      continue;
    }
    it->second.matched = true;
    const ScenarioMetrics& want = it->second.metrics;
    const auto field_diff = [&](const char* field, double got, double expect) {
      report.diffs.push_back(fresh.name + " " + field + ": got " +
                             format_g(got) + ", golden " + format_g(expect));
    };
    if (!within_rel(fresh.final_loss, want.final_loss, tolerance.loss_rel)) {
      field_diff("loss", fresh.final_loss, want.final_loss);
    }
    if (std::abs(fresh.final_quality - want.final_quality) >
        tolerance.quality_abs) {
      field_diff("quality", fresh.final_quality, want.final_quality);
    }
    if (!within_rel(fresh.mean_selected_fraction, want.mean_selected_fraction,
                    tolerance.fraction_rel)) {
      field_diff("frac", fresh.mean_selected_fraction,
                 want.mean_selected_fraction);
    }
    if (!within_rel(fresh.simulated_wall_seconds, want.simulated_wall_seconds,
                    tolerance.wall_rel)) {
      field_diff("wall", fresh.simulated_wall_seconds,
                 want.simulated_wall_seconds);
    }
    if (!within_rel(static_cast<double>(fresh.wire_bytes),
                    static_cast<double>(want.wire_bytes),
                    tolerance.wire_rel)) {
      field_diff("bytes", static_cast<double>(fresh.wire_bytes),
                 static_cast<double>(want.wire_bytes));
    }
    if (!within_rel(fresh.effective_ratio, want.effective_ratio,
                    tolerance.wire_rel)) {
      field_diff("eff", fresh.effective_ratio, want.effective_ratio);
    }
    if (std::abs(fresh.mean_staleness - want.mean_staleness) >
        tolerance.staleness_abs) {
      field_diff("mean_stale", fresh.mean_staleness, want.mean_staleness);
    }
    // jain < 0 means "not a fleet line"; presence itself must agree.
    if ((fresh.jain >= 0.0) != (want.jain >= 0.0) ||
        (fresh.jain >= 0.0 &&
         std::abs(fresh.jain - want.jain) > tolerance.jain_abs)) {
      field_diff("jain", fresh.jain, want.jain);
    }
    if (histogram_total(fresh.staleness_histogram) !=
        histogram_total(want.staleness_histogram)) {
      field_diff("stale total",
                 static_cast<double>(
                     histogram_total(fresh.staleness_histogram)),
                 static_cast<double>(
                     histogram_total(want.staleness_histogram)));
    }
  }
  for (const auto& [name, cell] : golden) {
    if (!cell.matched) {
      report.diffs.push_back("golden cell not produced: " + name);
    }
  }
  report.ok = report.diffs.empty();
  return report;
}

}  // namespace sidco::dist
