// Discrete-event machinery for the distributed runtime.
//
// Three pieces, shared by the session drivers in session.cpp:
//  - EventQueue: a min-heap on (time, sequence).  The sequence number is
//    assigned in push order, so ties between simultaneous events (e.g.
//    homogeneous workers finishing a lock-step round) resolve in schedule
//    order and every simulation is bit-reproducible.
//  - FifoLink: one half-duplex link on which transfers serialize in request
//    order — the parameter-server NIC.  Contention (a push queueing behind
//    another worker's pull) falls out of the busy-until bookkeeping.
//  - overlapped_iteration_seconds: the chunked compute/communication overlap
//    pipeline of the synchronous collective path.  Gradient chunk j becomes
//    available once (j+1)/chunks of the producing compute+compress work is
//    done; chunk collectives serialize on the fabric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

namespace sidco::dist {

/// What a scheduled event means to the parameter-server driver.
enum class EventKind : std::uint8_t {
  kPullDone,    ///< worker received fresh parameters, compute may start
  kStepDone,    ///< worker finished compute + compress, push may start
  kPushArrive,  ///< worker's gradient fully received by the server
  kWake,        ///< staleness guard released a blocked worker
};

struct SimEvent {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< push order; deterministic tie-break
  std::size_t worker = 0;
  EventKind kind = EventKind::kStepDone;
  std::size_t round = 0;
};

class EventQueue {
 public:
  /// Schedules an event; `time` must be finite and non-negative.
  void push(double time, std::size_t worker, EventKind kind, std::size_t round);

  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Removes and returns the earliest event (ties by push order).
  SimEvent pop();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

class FifoLink {
 public:
  FifoLink(double bytes_per_second, double latency_seconds);

  /// Starts a transfer of `bytes` at `now` or when the link frees up,
  /// whichever is later; occupies the link until completion and returns the
  /// completion time.  Zero-byte transfers complete immediately.
  double transfer(double now, std::size_t bytes);

  [[nodiscard]] double busy_until() const { return busy_until_; }

 private:
  double bytes_per_second_;
  double latency_seconds_;
  double busy_until_ = 0.0;
};

/// Wall-clock seconds of one synchronous collective iteration whose gradient
/// is exchanged in `chunks` equal pieces.  `produce_seconds` holds each
/// worker's modeled compute+compress time; chunk j of the slowest worker is
/// ready at (j+1)/chunks of its produce time, and each chunk's collective
/// costs `chunk_collective_seconds` on the shared fabric (chunks serialize).
/// With chunks == 1 this degenerates to max(produce) + collective — the
/// non-overlapped schedule.
double overlapped_iteration_seconds(std::span<const double> produce_seconds,
                                    std::size_t chunks,
                                    double chunk_collective_seconds);

}  // namespace sidco::dist
