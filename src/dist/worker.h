// One simulated data-parallel worker: a model replica, a private data stream,
// a compressor instance, and an error-feedback memory (Algorithm 2).
//
// step() runs a real forward/backward on a locally sampled batch, adds the
// residual memory when error feedback is on, compresses, and retains the
// unselected remainder as the new residual.  apply_update() applies the
// aggregated (averaged) gradient, so replicas that start from the same
// model seed stay bit-identical across workers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "compressors/compressor.h"
#include "core/autotune.h"
#include "core/factory.h"
#include "data/dataset.h"
#include "dist/device_model.h"
#include "dist/network_model.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace sidco::dist {

struct WorkerStepResult {
  tensor::SparseGradient sparse;
  /// The gradient as it would travel: a comm-codec message (sparse payload
  /// with auto-selected index mode, or a dense message when every coordinate
  /// is kept).  Its size is the measured bytes-on-wire for this push.
  std::vector<std::uint8_t> encoded;
  /// encoded.size() — measured, not modeled.
  std::size_t wire_bytes = 0;
  std::size_t selected = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double threshold = 0.0;
  int stages_used = 1;
  /// Wall-clock seconds spent inside compress() on this process (feeds the
  /// CPU-measured device model).
  double measured_compression_seconds = 0.0;
};

/// Deterministic pricing context for the worker-local autotune controller:
/// turns the worker's own measured wire bytes and compressor state into the
/// modeled comm/compute seconds the controller steers on.  Built by
/// dist::detail::make_worker from the session's TimingContext, so every
/// engine prices the signals with identical arithmetic — which is what keeps
/// simulated/threads/sockets bit-identical under autotuning (no decision
/// ever depends on real clocks or on other workers' state).
struct WorkerAutotuneModel {
  NetworkModel network;
  DeviceModel device;
  core::Scheme scheme = core::Scheme::kNone;
  /// Collective pricing (sparse allgather) vs a single PS-link transfer.
  bool collective = true;
  /// Dimension the timing model is evaluated at (paper scale or proxy).
  std::size_t timing_dim = 0;
  /// Modeled forward/backward seconds per step (TimingContext::base_compute).
  double base_compute = 0.0;
  /// This worker's speed multiplier (straggler / heterogeneous profiles).
  double scale = 1.0;
};

class Worker {
 public:
  /// `model_seed` fixes the replica initialization (identical across workers
  /// of one session); `stream_seed` fixes this worker's private batch stream
  /// and compressor randomness.
  Worker(nn::Benchmark benchmark, std::uint64_t model_seed,
         std::uint64_t stream_seed, core::Scheme scheme, double target_ratio,
         bool error_feedback);

  /// Arms the per-worker autotune controller: each step() observes its own
  /// modeled comm/compute split (and, in the gof modes, the compressor's
  /// stage-1 fit quality) and retunes the compressor's target ratio for the
  /// next step.  No-op when `config` is off or the scheme is kNone (nothing
  /// to tune).  Must be called before the first step().
  void enable_autotune(const core::AutotuneConfig& config,
                       const WorkerAutotuneModel& model);

  /// Forward/backward on one sampled batch of `batch_size`, then compress.
  WorkerStepResult step(std::size_t batch_size);

  /// Applies the aggregated dense gradient through this worker's optimizer.
  void apply_update(std::span<const float> aggregated_gradient);

  /// Mean loss/accuracy over `batches` deterministic held-out batches.
  [[nodiscard]] nn::LossResult evaluate(std::size_t batch_size,
                                        std::size_t batches);

  /// Overwrites this replica's parameters (a pull from the canonical
  /// parameter-server copy).  Size must equal parameter_count().
  void overwrite_parameters(std::span<const float> params);

  /// Adopts `source`'s replica state: parameters plus optimizer momentum.
  /// What a worker joining a running session mid-stream does so every
  /// replica keeps applying identical updates to identical state (elastic
  /// membership, src/sched).  The error-feedback residual is NOT copied —
  /// residual handoff is a separate policy (overwrite_error_memory).
  void adopt_replica_state(const Worker& source);

  /// Overwrites the error-feedback residual (Algorithm 2's memory): the
  /// residual-handoff half of an elastic join — warm-start from a departed
  /// worker's parked residual, or zero-init with an all-zero span.  Size
  /// must equal parameter_count().
  void overwrite_error_memory(std::span<const float> residual);

  [[nodiscard]] std::span<const float> parameters() const {
    return model_.parameters();
  }

  [[nodiscard]] std::size_t gradient_dimension() const {
    return model_.parameter_count();
  }
  [[nodiscard]] std::span<const float> error_memory() const { return memory_; }
  [[nodiscard]] const nn::Model& model() const { return model_; }

  /// The compressor's current target ratio (moves under autotuning).
  [[nodiscard]] double tuned_ratio() const {
    return compressor_->target_ratio();
  }
  /// The armed controller, or nullptr when autotuning is off.
  [[nodiscard]] const core::AutotuneController* autotune() const {
    return autotune_ ? &*autotune_ : nullptr;
  }

 private:
  nn::Benchmark benchmark_;
  nn::Model model_;
  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<compressors::Compressor> compressor_;
  nn::SgdOptimizer optimizer_;
  util::Rng rng_;
  bool error_feedback_;
  std::vector<float> memory_;       ///< error-feedback residual
  std::vector<float> ec_gradient_;  ///< gradient + residual scratch
  std::vector<float> dlogits_;
  /// Reused across steps so the timed compress_into window measures the
  /// steady-state (allocation-free) kernel path, which is what the
  /// CPU-measured device model extrapolates from.
  compressors::CompressResult compressed_;
  /// Reused wire-encode buffer (encoding sits outside the timed window).
  std::vector<std::uint8_t> encoded_;
  /// Armed together by enable_autotune(); absent in fixed-ratio sessions.
  std::optional<core::AutotuneController> autotune_;
  std::optional<WorkerAutotuneModel> autotune_model_;
};

}  // namespace sidco::dist
