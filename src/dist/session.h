// Distributed training sessions (the paper's evaluation harness), built on a
// discrete-event runtime (event_sim.h).  N workers run real forward /
// backward / compress steps; gradient exchange and wall-clock are modeled on
// NetworkModel / DeviceModel timelines.  Two topologies:
//
//  - kAllreduce: synchronous collective exchange (sparse allgather when
//    compressing, ring allreduce otherwise).  Lock-step numerics; timing
//    supports per-worker speed profiles (stragglers / heterogeneous devices)
//    and chunked compute/communication overlap.  With homogeneous workers
//    and overlap_chunks == 1 this reproduces the legacy synchronous session
//    (run_session_reference) bit-for-bit, timing included.
//
//  - kParameterServer: bounded-staleness asynchronous aggregation.  Workers
//    push compressed gradients to a central server over a FIFO link; the
//    server applies each round's mean update (in worker order, through one
//    canonical optimizer) as soon as the round is complete, and a worker may
//    compute round c on parameters that miss at most `staleness_bound`
//    applied rounds (SSP slack).  staleness_bound == 0 degenerates to fully
//    synchronous training and produces parameters bit-identical to the
//    legacy session — a regression test enforces this.
//
// Timing can be evaluated at the proxy model's dimension or at the
// paper-scale parameter counts of Table 1 (`paper_scale_timing`, default).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/autotune.h"
#include "core/factory.h"
#include "dist/device_model.h"
#include "dist/network_model.h"
#include "nn/zoo.h"

namespace sidco::dist {

enum class Topology {
  kAllreduce,        ///< synchronous collective (allgather / ring allreduce)
  kParameterServer,  ///< central server; async when staleness_bound > 0
};

std::string_view topology_name(Topology topology);

/// Which execution engine runs the session.  All engines share worker seed
/// derivation, aggregation order and byte accounting, so at staleness 0 they
/// are bit-identical on parameters / losses / wire bytes (enforced by
/// test_runtime_differential and test_socket_differential).
enum class Engine {
  /// Single-threaded discrete-event simulation; wall-clock comes from the
  /// Network/Device timing models.  Default, and the golden-metric oracle.
  kSimulated,
  /// One real thread per worker (plus a server thread in kParameterServer),
  /// exchanging encoded wire payloads through an in-memory transport over
  /// bounded channels (runtime/transport.h).  Measured wall-clock lands in
  /// the measured_* fields of SessionResult; modeled timing is still
  /// reported where it is a closed form (allgather), and omitted where it
  /// would need the event timeline (parameter-server communication).
  kThreads,
  /// One forked *process* per worker, exchanging the same framed codec
  /// bytes over real Unix-domain (default) or loopback TCP sockets
  /// (runtime/process_session.h; SIDCO_SOCKET_FAMILY selects the family).
  /// Runs the identical topology protocol code as kThreads and is
  /// bit-identical to it on parameters / losses / evals / wire bytes.
  kSockets,
};

std::string_view engine_name(Engine engine);

/// Seeded deterministic fault injection for the real engines (threads /
/// sockets).  Message faults (drop / delay / duplicate / reorder / corrupt)
/// are per-message probabilities drawn from a pure hash of (seed, link
/// direction, per-link send index) — the same config always injects the
/// identical schedule, independent of thread/process timing (runtime/fault.h).
/// Process faults (kill) and link faults (cut) model worker death and link
/// loss.  All faults require a non-simulated engine; message faults force the
/// reliable-delivery layer on, and the headline invariant is that any lossy-
/// but-connected schedule leaves session results bit-identical to the
/// fault-free run (test_chaos_differential).
struct FaultInjectionConfig {
  /// "Not a participant" sentinel for the index knobs below.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::uint64_t seed = 1;  ///< fault schedule seed (independent of config.seed)
  // Per-message fault probabilities in [0, 1]; their sum must be <= 1 (at
  // most one fault per message, chosen by one uniform draw).
  double drop = 0.0;       ///< message vanishes (retransmission recovers it)
  double delay = 0.0;      ///< held back `delay_slots` sends on its link
  double duplicate = 0.0;  ///< message delivered twice back to back
  double reorder = 0.0;    ///< held back one send (swaps with its successor)
  double corrupt = 0.0;    ///< one payload byte flipped (checksum catches it)
  /// Holdback span (in subsequent sends on the same link) for `delay`.
  std::size_t delay_slots = 2;

  /// Permanent partition: every message on links touching this worker is
  /// dropped once the link's send index reaches `partition_after`.  The one
  /// fault class that cannot preserve results: the session must end in a
  /// structured error (fail-fast) or a recorded eviction (degraded mode).
  std::size_t partition_worker = kNone;
  std::size_t partition_after = 0;

  /// Worker SIGKILLs itself at the start of round `kill_round` (sockets
  /// engine only — a forked child can die without taking the session down).
  std::size_t kill_worker = kNone;
  std::size_t kill_round = 0;

  /// One-shot link cut: endpoint `cut_from` hard-closes its socket to
  /// `cut_to` after writing `cut_after` frames (sockets engine only).
  /// Exercises mid-session reconnect + retransmission recovery.
  std::size_t cut_from = kNone;
  std::size_t cut_to = kNone;
  std::size_t cut_after = 0;

  /// Any per-message fault configured (the kinds the reliable layer hides).
  [[nodiscard]] bool lossy() const {
    return drop > 0.0 || delay > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           corrupt > 0.0 || partition_worker != kNone;
  }
  [[nodiscard]] bool any() const {
    return lossy() || kill_worker != kNone || cut_from != kNone;
  }
};

/// Reliable-delivery knobs (runtime/reliable.h): per-link ack/retransmission
/// with exponential backoff over the frame seq field, plus heartbeat-based
/// silence detection.  Forced on by the engines whenever message faults or a
/// link cut are configured; can be enabled alone to harden a clean session.
struct ReliabilityConfig {
  bool enabled = false;
  /// Retransmission attempts per frame before the peer is declared dead.
  std::size_t max_retries = 12;
  double backoff_initial_ms = 2.0;  ///< first retransmit delay (doubles...)
  double backoff_max_ms = 200.0;    ///< ...up to this cap
  /// Max unacked frames in flight per link before send() blocks.
  std::size_t window = 64;
  /// A peer silent for this long (no data/ack/heartbeat/bye) is declared
  /// dead.  Must exceed the longest compute gap between a peer's transport
  /// calls — a worker crunching a huge batch does not heartbeat.
  double silence_timeout_seconds = 30.0;
  /// Idle-link heartbeat period (sent from within blocked transport calls).
  double heartbeat_interval_seconds = 1.0;
};

/// What a confirmed-dead worker does to the session.
enum class FailurePolicy {
  /// Default: the session fails with a structured error naming the worker.
  kFailFast,
  /// Parameter-server only: the server evicts the dead worker, re-normalizes
  /// every subsequent round mean over the survivors, records the eviction in
  /// SessionResult::evictions, and the session completes.  Requires
  /// reliability.enabled (eviction needs confirmed death, not a guess).
  kEvict,
};

/// Transport-layer event counters aggregated across all endpoints of a
/// session (injected faults + recovery work).  Excluded from bit-identity
/// comparisons: faults may only change wall-clock and these counters.
struct FaultCounters {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t retransmits = 0;  ///< reliable-layer retransmissions
  std::uint64_t reconnects = 0;   ///< socket links re-established

  /// Faults injected by the fault plan (not recovery work).
  [[nodiscard]] std::uint64_t total_injected() const {
    return drops + delays + duplicates + reorders + corruptions;
  }
};

/// One recorded worker eviction (FailurePolicy::kEvict).
struct Eviction {
  std::size_t worker = 0;
  /// Server rounds applied when the eviction happened (the first round whose
  /// mean could be re-normalized over the survivors).
  std::size_t round = 0;
};

struct SessionConfig {
  nn::Benchmark benchmark = nn::Benchmark::kResNet20;
  core::Scheme scheme = core::Scheme::kNone;
  double target_ratio = 1.0;
  /// Online compressibility-aware autotuning (core/autotune.h).  When the
  /// mode is not kOff and the scheme compresses, every worker arms a
  /// controller seeded at `target_ratio` (clamped into the bounds) that
  /// retunes its compressor per iteration from modeled signals only —
  /// engines stay bit-identical to each other under autotuning.
  core::AutotuneConfig autotune;
  std::size_t workers = 4;
  std::size_t iterations = 100;
  /// Evaluate every `eval_every` iterations (0 = final evaluation only).
  std::size_t eval_every = 0;
  std::size_t eval_batches = 2;
  std::uint64_t seed = 42;
  bool error_feedback = true;
  /// Run worker steps on a thread per worker; numerically identical to the
  /// serial path (workers are fully independent between aggregations).
  /// Allreduce topology only.
  bool parallel_workers = false;
  /// Evaluate the timing model at Table 1's paper-scale parameter counts
  /// rather than at the proxy model's dimension.
  bool paper_scale_timing = true;
  Device device = Device::kGpuModel;
  /// Fabric parameters; `network.workers` is overridden by `workers`.
  NetworkConfig network;

  Topology topology = Topology::kAllreduce;
  /// SSP slack for kParameterServer: a worker may compute round c on
  /// parameters missing at most this many applied rounds.  0 = fully
  /// synchronous (BSP).  Ignored by kAllreduce.
  std::size_t staleness_bound = 0;
  /// Number of gradient chunks whose collective transfer overlaps the
  /// producing compute/compress pipeline (kAllreduce only; 1 = no overlap).
  /// Chunking pays one latency hop per chunk — the classic tradeoff.
  std::size_t overlap_chunks = 1;
  /// Per-worker multipliers on modeled compute+compress seconds (> 1 slows a
  /// worker down: stragglers / heterogeneous devices).  Empty = homogeneous;
  /// otherwise size must equal `workers`.  Timing-only in kAllreduce; in
  /// kParameterServer it also reorders pushes and therefore staleness.
  /// Modeled-timing only: the threads engine runs at real hardware speed.
  std::vector<double> worker_time_scale;

  /// Execution engine (see Engine).  kThreads/kSockets run every worker on
  /// a real thread/process; numerics/bytes match kSimulated bit-for-bit at
  /// staleness 0.
  Engine engine = Engine::kSimulated;
  /// Bounded-queue capacity (messages) for the real engines: channel
  /// capacity under kThreads, per-peer socket send-queue bound under
  /// kSockets.  Any value >= 1 is deadlock-free and numerics-invariant; it
  /// only changes how much backpressure producers feel.  Ignored by
  /// kSimulated.
  std::size_t channel_capacity = 8;

  /// Deterministic fault injection (real engines only; see
  /// FaultInjectionConfig).  Default: no faults.
  FaultInjectionConfig fault;
  /// Reliable-delivery layer; forced on whenever `fault` is lossy or cuts a
  /// link.
  ReliabilityConfig reliability;
  /// Confirmed-dead-worker policy (kEvict needs kParameterServer topology
  /// and reliability.enabled).
  FailurePolicy on_worker_failure = FailurePolicy::kFailFast;
  /// Session watchdog: the whole session (rendezvous included) must finish
  /// within this many seconds or every transport call fails with a
  /// descriptive CheckError instead of hanging.  0 = use the
  /// SIDCO_SESSION_DEADLINE environment variable if set, else no deadline.
  double deadline_seconds = 0.0;
};

struct IterationRecord {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double achieved_ratio = 0.0;
  /// Measured bytes-on-wire of this iteration's worker pushes: the summed
  /// sizes of the actual comm-codec payloads (proxy dimension).  Zero for
  /// single-worker sessions — nothing crosses the wire.  Parameter-server
  /// pull traffic is accounted on SessionResult::total_wire_bytes only
  /// (pulls span rounds).
  std::size_t wire_bytes = 0;
  int stages_used = 1;
  double compute_seconds = 0.0;
  double compression_seconds = 0.0;
  double communication_seconds = 0.0;
  /// Modeled wall-clock of this iteration/round when the event runtime
  /// computed one (overlap and async make the breakdown non-additive);
  /// negative = not set, wall_seconds() falls back to the sum.
  double modeled_wall_seconds = -1.0;

  [[nodiscard]] double wall_seconds() const {
    if (modeled_wall_seconds >= 0.0) return modeled_wall_seconds;
    return compute_seconds + compression_seconds + communication_seconds;
  }
};

struct EvalRecord {
  std::size_t iteration = 0;  ///< 1-based iteration the eval follows
  double loss = 0.0;
  double accuracy = 0.0;
  /// Benchmark quality metric (accuracy / perplexity / CER), direction per
  /// benchmark_quality().
  double quality = 0.0;
};

/// Direction-aware quality value (Table 1's metric per benchmark).
struct QualityMetric {
  double value = 0.0;
  bool higher_is_better = true;
};

/// Maps (mean eval loss, eval accuracy) to the benchmark's quality metric:
/// accuracy for the image models, perplexity exp(loss) for PTB, character
/// error rate 1 - accuracy for AN4.
QualityMetric benchmark_quality(nn::Benchmark benchmark, double mean_loss,
                                double accuracy);

struct SessionResult {
  SessionConfig config;
  std::size_t gradient_dimension = 0;
  std::vector<IterationRecord> iterations;
  std::vector<EvalRecord> evals;
  double final_loss = 0.0;
  double final_quality = 0.0;
  bool quality_higher_is_better = true;
  double total_modeled_seconds = 0.0;
  /// Total measured bytes-on-wire serialized by the comm codec at the proxy
  /// dimension: every worker push payload, plus parameter-pull payloads in
  /// kParameterServer.  Zero when workers == 1.
  std::size_t total_wire_bytes = 0;
  /// Dense-fp32 equivalent of the same traffic (4 bytes x dimension per
  /// payload) — the denominator of effective_wire_ratio().
  std::size_t total_dense_equiv_bytes = 0;
  /// Final model parameters (worker-0 replica; the canonical server copy in
  /// kParameterServer).  Enables bit-identity regression tests.
  std::vector<float> final_parameters;
  /// staleness_histogram[s] counts applied gradients computed on parameters
  /// missing s rounds.  Synchronous paths record everything in bin 0.
  std::vector<std::size_t> staleness_histogram;

  /// Real measured wall-clock (util::Timer) of the whole session under the
  /// threads engine; 0 under the simulated engine.  Excluded from golden
  /// comparison — it reports what the hardware actually did.
  double measured_wall_seconds = 0.0;
  /// Max over workers of their summed real step (forward/backward/compress)
  /// seconds — the measured critical-path compute.  Threads engine only.
  double measured_compute_seconds = 0.0;
  /// Max over workers of their summed real exchange seconds (channel sends,
  /// payload collection/decode waits, parameter pulls).  Threads engine only.
  double measured_comm_seconds = 0.0;

  /// Transport fault/recovery counters summed over every endpoint that
  /// reported (workers ship theirs in the kDone frame; the coordinator adds
  /// its own).  All zero for fault-free sessions.  Never golden-compared.
  FaultCounters fault_counters;
  /// Workers evicted under FailurePolicy::kEvict, in eviction order.  Empty
  /// means every worker survived (and results are bit-identical to the
  /// fault-free oracle under any lossy-but-connected schedule).
  std::vector<Eviction> evictions;

  [[nodiscard]] double mean_staleness() const;
  [[nodiscard]] std::size_t max_staleness() const;

  /// Measured bytes-on-wire relative to shipping dense fp32 payloads on the
  /// same schedule: total_wire_bytes / total_dense_equiv_bytes.  This is the
  /// honest counterpart of achieved_ratio — index-encoding overhead and
  /// aggregation-side densification (PS pulls) land here.  0 when nothing
  /// crossed the wire.
  [[nodiscard]] double effective_wire_ratio() const;

  /// Aggregate samples/s under the modeled wall time.
  [[nodiscard]] double throughput_samples_per_second() const;

  [[nodiscard]] std::vector<double> loss_series() const;
  [[nodiscard]] std::vector<double> achieved_ratio_series() const;
};

/// Runs a full training session, dispatching on `config.engine` (simulated
/// event runtime vs real threads) and `config.topology`.  The simulated
/// engine is deterministic in `config` (including across parallel_workers
/// on/off) for everything except the measured-CPU latency fields — and, in
/// kParameterServer, determinism of the event order itself requires the
/// analytic device model (Device::kGpuModel).  The threads engine is
/// deterministic on numerics/bytes in kAllreduce and in kParameterServer at
/// staleness 0; at staleness > 0 real scheduling decides which admissible
/// version a worker computes on (README "Execution engines").
SessionResult run_session(const SessionConfig& config);

/// The frozen pre-event-runtime synchronous loop, kept verbatim as the
/// regression oracle: run_session with the default topology/overlap/speed
/// fields — and the kParameterServer path at staleness_bound == 0 — must
/// match it bit-for-bit on parameters, losses and evals.  New code should
/// call run_session.
SessionResult run_session_reference(const SessionConfig& config);

}  // namespace sidco::dist
