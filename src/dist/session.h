// Synchronous data-parallel training session (the paper's evaluation
// harness).  N workers run real forward/backward/compress steps; gradients
// are exchanged by modeled collectives (sparse allgather when compressing,
// ring allreduce otherwise) and each iteration's wall time is the modeled
// compute + compression + communication breakdown.  Timing can be evaluated
// at the proxy model's dimension or at the paper-scale parameter counts of
// Table 1 (`paper_scale_timing`, the default).
#pragma once

#include <cstdint>
#include <vector>

#include "core/factory.h"
#include "dist/device_model.h"
#include "dist/network_model.h"
#include "nn/zoo.h"

namespace sidco::dist {

struct SessionConfig {
  nn::Benchmark benchmark = nn::Benchmark::kResNet20;
  core::Scheme scheme = core::Scheme::kNone;
  double target_ratio = 1.0;
  std::size_t workers = 4;
  std::size_t iterations = 100;
  /// Evaluate every `eval_every` iterations (0 = final evaluation only).
  std::size_t eval_every = 0;
  std::size_t eval_batches = 2;
  std::uint64_t seed = 42;
  bool error_feedback = true;
  /// Run worker steps on a thread per worker; numerically identical to the
  /// serial path (workers are fully independent between aggregations).
  bool parallel_workers = false;
  /// Evaluate the timing model at Table 1's paper-scale parameter counts
  /// rather than at the proxy model's dimension.
  bool paper_scale_timing = true;
  Device device = Device::kGpuModel;
  /// Fabric parameters; `network.workers` is overridden by `workers`.
  NetworkConfig network;
};

struct IterationRecord {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double achieved_ratio = 0.0;
  int stages_used = 1;
  double compute_seconds = 0.0;
  double compression_seconds = 0.0;
  double communication_seconds = 0.0;

  [[nodiscard]] double wall_seconds() const {
    return compute_seconds + compression_seconds + communication_seconds;
  }
};

struct EvalRecord {
  std::size_t iteration = 0;  ///< 1-based iteration the eval follows
  double loss = 0.0;
  double accuracy = 0.0;
  /// Benchmark quality metric (accuracy / perplexity / CER), direction per
  /// benchmark_quality().
  double quality = 0.0;
};

/// Direction-aware quality value (Table 1's metric per benchmark).
struct QualityMetric {
  double value = 0.0;
  bool higher_is_better = true;
};

/// Maps (mean eval loss, eval accuracy) to the benchmark's quality metric:
/// accuracy for the image models, perplexity exp(loss) for PTB, character
/// error rate 1 - accuracy for AN4.
QualityMetric benchmark_quality(nn::Benchmark benchmark, double mean_loss,
                                double accuracy);

struct SessionResult {
  SessionConfig config;
  std::size_t gradient_dimension = 0;
  std::vector<IterationRecord> iterations;
  std::vector<EvalRecord> evals;
  double final_loss = 0.0;
  double final_quality = 0.0;
  bool quality_higher_is_better = true;
  double total_modeled_seconds = 0.0;

  /// Aggregate samples/s under the modeled wall time.
  [[nodiscard]] double throughput_samples_per_second() const;

  [[nodiscard]] std::vector<double> loss_series() const;
  [[nodiscard]] std::vector<double> achieved_ratio_series() const;
};

/// Runs a full synchronous training session.  Deterministic in `config`
/// (including across parallel_workers on/off) for everything except the
/// measured-CPU latency fields.
SessionResult run_session(const SessionConfig& config);

}  // namespace sidco::dist
