#include "dist/device_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sidco::dist {

namespace {

// GPU cost constants (seconds).  kLaunch is per-kernel launch overhead;
// per-element constants encode how friendly the access pattern is to the
// memory system: streaming reads are cheapest, random gathers ~4x worse, and
// sort-based selection pays an n log n radix/merge factor.
constexpr double kLaunch = 3e-5;
constexpr double kStream = 1e-10;   ///< per element, coalesced pass
constexpr double kGather = 4e-10;   ///< per element, random sampling
constexpr double kSort = 2.5e-10;   ///< per element per log2(n), full sort
constexpr double kFit = 8e-11;      ///< per element, moment reduction

double log2_of(std::size_t n) {
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
}

}  // namespace

double DeviceModel::gpu_seconds(core::Scheme scheme, std::size_t d,
                                double ratio, int stages) const {
  util::check(d > 0, "gpu timing needs a positive dimension");
  util::check(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
  util::check(stages >= 1, "stage count must be >= 1");
  const auto n = static_cast<double>(d);
  switch (scheme) {
    case core::Scheme::kNone:
      return 0.0;
    case core::Scheme::kTopK:
      // Full sort-based selection of k = ratio * d.
      return kLaunch + kSort * n * log2_of(d);
    case core::Scheme::kDgc: {
      // Sample ~1%, sort the sample for a threshold, then one mask pass.
      const auto sample =
          std::max<std::size_t>(64, static_cast<std::size_t>(0.01 * n));
      return 2.0 * kLaunch + kGather * n +
             kSort * static_cast<double>(sample) * log2_of(sample) +
             kStream * n;
    }
    case core::Scheme::kRedSync: {
      // Iterative threshold search: ~12 full scan-and-count passes.
      constexpr double kPasses = 12.0;
      return kPasses * (1e-5 + 1.2 * kStream * n);
    }
    case core::Scheme::kGaussianKSgd:
      // Mean + variance reductions plus a threshold mask pass.
      return 3.0 * (1e-5 + 1.2 * kStream * n) + kStream * n;
    case core::Scheme::kRandomK:
      return kLaunch + kStream * n;
    case core::Scheme::kSidcoExponential:
    case core::Scheme::kSidcoGammaPareto:
    case core::Scheme::kSidcoPareto: {
      // Stage m >= 2 fits only the exceedances of stage m-1 (the population
      // shrinks by roughly the first-stage ratio, paper delta_1 = 0.25), so
      // the fit cost is a geometric series; one final mask pass sparsifies.
      // The CPU implementation (SidcoCompressor) realizes exactly this cost
      // structure: stages 3..M filter the previous stage's exceedance buffer
      // instead of rescanning the gradient, so the analytic GPU model and the
      // measured-CPU extrapolation share one complexity shape.
      double fit_elems = 0.0;
      double population = n;
      for (int m = 0; m < stages; ++m) {
        fit_elems += population;
        population *= 0.25;
      }
      const double sid_factor =
          scheme == core::Scheme::kSidcoExponential ? 1.0 : 1.25;
      return static_cast<double>(stages) * kLaunch +
             sid_factor * kFit * fit_elems + kStream * n;
    }
    case core::Scheme::kSchemeCount:
      break;
  }
  util::check(false, "unknown scheme in gpu timing model");
  return 0.0;
}

double DeviceModel::compression_seconds(core::Scheme scheme,
                                        std::size_t model_dim, double ratio,
                                        double measured,
                                        std::size_t measured_dim) const {
  util::check(measured_dim > 0, "measured dimension must be positive");
  util::check(measured >= 0.0, "measured latency must be non-negative");
  if (scheme == core::Scheme::kNone) return 0.0;
  (void)ratio;  // selection cost is dominated by the passes over d
  return measured * static_cast<double>(model_dim) /
         static_cast<double>(measured_dim);
}

}  // namespace sidco::dist
