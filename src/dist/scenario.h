// Declarative scenario matrix over the distributed runtime.
//
// A matrix spec is a TOML-like text block of `key = value[, value...]` lines;
// multi-valued keys are axes and the matrix is their cartesian product in a
// fixed expansion order, so a spec always produces the same cell sequence.
// Example:
//
//   # scheme x topology x network x staleness smoke matrix
//   workers    = 4
//   iterations = 10
//   seed       = 99
//   benchmark  = resnet20
//   ratio      = 0.01
//   scheme     = topk, dgc, sidco-e
//   topology   = allgather, ps
//   network    = 10gbps, 1gbps@50us
//   device     = homogeneous
//   error_feedback = on
//   staleness  = 0, 2
//   engine     = simulated  # | threads (worker threads) | sockets (processes)
//
// Each cell runs one deterministic run_session() (analytic device model) and
// reports golden-comparable metrics: final loss, quality, mean selected
// fraction, simulated wall-clock, measured bytes-on-wire with the effective
// compression ratio, and the staleness histogram.  Golden files
// are plain text (one cell per line, format_metrics); comparisons apply
// per-field tolerances so behavioral regressions fail while cross-compiler
// floating-point jitter does not.  `tools/run_scenarios --update-golden`
// regenerates the files.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dist/session.h"

namespace sidco::dist {

/// Named fabric profile (axis token like "10gbps" or "1gbps@50us").
struct NetworkProfile {
  std::string name;
  NetworkConfig config;
};

/// Named per-worker speed profile, resolved against the worker count at run
/// time: homogeneous | one-straggler-2x | one-straggler-4x | linear-ramp.
struct DeviceProfile {
  std::string name;
};

/// Named fault-schedule profile (axis token).  "none" is the clean wire;
/// otherwise a '+'-joined list of `kind:probability` terms, e.g.
/// "drop:0.05+dup:0.02" (kinds: drop | delay | dup | reorder | corrupt).
/// The per-cell seed comes from the separate `fault_seed` scalar so one
/// profile can be swept across seeds without rewriting the token.
struct FaultProfile {
  std::string name;
  FaultInjectionConfig config;
};

/// Parses one fault-profile token.  Throws util::CheckError on unknown
/// kinds, malformed probabilities, or a probability sum above 1.
FaultProfile parse_fault_profile(const std::string& token);

/// One elastic-membership event of a fleet tenant (axis token term,
/// `kind@round`): applied at the start of 0-based training round `round`.
/// kLeave removes the highest-index active worker (parking its
/// error-feedback residual; recorded as an Eviction).  kJoin adds a brand-
/// new worker (fresh index, frozen seed derivation).  kRejoin re-activates
/// the most recently departed worker.  Joining workers adopt the current
/// replica state; their residual follows the spec's ResidualHandoff policy.
struct ChurnEvent {
  enum class Kind { kJoin, kLeave, kRejoin };
  Kind kind = Kind::kLeave;
  std::size_t round = 0;
};

/// Named churn schedule (axis token): "none", or '+'-joined ChurnEvent terms
/// in non-decreasing round order, e.g. "leave@2+rejoin@4".
struct ChurnSchedule {
  std::string name = "none";
  std::vector<ChurnEvent> events;
};

/// Parses a churn-schedule token.  Throws util::CheckError on unknown event
/// kinds, malformed rounds, or out-of-order events.  Feasibility against the
/// spec's worker/iteration counts is validated by parse_matrix_spec.
ChurnSchedule parse_churn_schedule(const std::string& token);

/// What a joining worker's error-feedback residual starts from (`handoff =
/// zero | warm`): all zeros, or the most recently parked (departed) residual
/// when one exists — rejoining workers warm-start from their own.
enum class ResidualHandoff { kZeroInit, kWarmStart };

ResidualHandoff parse_residual_handoff(const std::string& token);
std::string_view residual_handoff_name(ResidualHandoff handoff);

/// Resolves a device profile to per-worker time multipliers (empty =
/// homogeneous).  Throws util::CheckError on an unknown profile name.
std::vector<double> resolve_device_profile(const DeviceProfile& profile,
                                           std::size_t workers);

struct MatrixSpec {
  // Scalars (single-valued keys).
  std::size_t workers = 4;
  std::size_t iterations = 10;
  std::size_t eval_every = 0;
  std::size_t eval_batches = 2;
  std::uint64_t seed = 42;
  /// Execution engine for every cell (`engine = simulated | threads |
  /// sockets`).  Every non-simulated cell carries a "/<engine>" name suffix
  /// so each engine is its own golden universe and an overridden engine can
  /// never collide with another engine's goldens.
  Engine engine = Engine::kSimulated;
  /// Bounded-queue capacity for the real engines (`channel_capacity`).
  std::size_t channel_capacity = 8;
  /// Seed for every cell's fault schedule (`fault_seed`); only meaningful
  /// when the `fault` axis has non-"none" entries.
  std::uint64_t fault_seed = 1;
  /// Worker-failure policy for every cell (`failure = failfast | evict`).
  FailurePolicy failure = FailurePolicy::kFailFast;
  /// Session watchdog deadline in seconds (`deadline`); 0 = none.
  double deadline = 0.0;
  /// Controller knobs shared by every autotuned cell: `autotune_min` /
  /// `autotune_max` set the hard ratio bounds, `autotune_gof_poor` /
  /// `autotune_gof_good` the KS thresholds (fit quality is scheme- and
  /// benchmark-dependent, so gof gates are calibrated per spec); the mode
  /// itself is the `autotune` axis below.
  core::AutotuneConfig autotune_base;

  // Axes (multi-valued keys), expanded outermost-first in this order.
  std::vector<nn::Benchmark> benchmarks{nn::Benchmark::kResNet20};
  std::vector<core::Scheme> schemes{core::Scheme::kTopK};
  std::vector<double> ratios{0.01};
  std::vector<Topology> topologies{Topology::kAllreduce};
  std::vector<NetworkProfile> networks{
      {.name = "10gbps", .config = NetworkConfig{}}};
  std::vector<DeviceProfile> devices{{.name = "homogeneous"}};
  std::vector<bool> error_feedback{true};
  std::vector<std::size_t> staleness{0};
  std::vector<std::size_t> chunks{1};
  /// (`fault = none, drop:0.05+dup:0.02, ...`): the seeded fault schedule
  /// injected under the reliable layer.  Non-"none" cells get a "/<token>"
  /// name suffix; they require a real engine (the simulated engine has no
  /// wire to break), which the parser enforces.
  std::vector<FaultProfile> faults{{.name = "none", .config = {}}};
  /// Innermost axis (`autotune = off, bytes, gof, full`): the online
  /// target-ratio controller's mode.  Non-"off" cells get an "/at-<mode>"
  /// name suffix — their own golden universe — while off cells keep their
  /// historical names byte-stable.
  std::vector<core::AutotuneMode> autotune{core::AutotuneMode::kOff};

  // Fleet axes and scalars (multi-tenant scheduling, src/sched).  A spec
  // with a `tenants` key expands every base cell into fleet cells — N
  // concurrent sessions sharing one fair-share link — nested innermost in
  // the order tenants x churn x bandwidth_trace, each named with a
  // "/fleet-t<N>/<churn>/<trace>" suffix so fleet cells are their own golden
  // universe (one golden line per tenant, "<cell>/t<k>").  Fleet specs
  // require the simulated engine, allgather topology, homogeneous devices
  // and overlap_chunks == 1, which the parser enforces.  The remaining
  // fleet keys are rejected without `tenants`.
  /// (`tenants = 1, 2, 4`): concurrent sessions per cell.  Empty = a plain
  /// (non-fleet) spec.
  std::vector<std::size_t> tenants{};
  /// (`churn = none, leave@2+rejoin@4`): elastic-membership schedule,
  /// applied identically to every tenant of the cell.
  std::vector<ChurnSchedule> churn{ChurnSchedule{}};
  /// (`bandwidth_trace = flat, 10x0.5+1x0.5`): shared-link capacity over
  /// simulated time; "flat" uses the cell's network-profile bandwidth.
  std::vector<BandwidthTrace> traces{BandwidthTrace{}};
  /// (`tenant_weights = 1:2:4`): ':'-joined fair-share weights, cycled over
  /// the tenant index.  Empty = equal weights.
  std::vector<double> tenant_weights{};
  /// (`handoff = warm | zero`): joining workers' residual policy.
  ResidualHandoff handoff = ResidualHandoff::kWarmStart;
};

/// Fleet parameters of one expanded cell (present iff the spec had a
/// `tenants` key).  Tenant t runs the cell's SessionConfig with seed
/// `config.seed + t` (distinct data/init streams per tenant) and fair-share
/// weight `weights[t]`.
struct FleetCell {
  std::size_t tenants = 1;
  std::vector<double> weights;  ///< resolved per tenant (size == tenants)
  ChurnSchedule churn;
  BandwidthTrace trace;
  ResidualHandoff handoff = ResidualHandoff::kWarmStart;
};

/// One expanded matrix cell: a stable name plus a ready-to-run config.
/// Fleet cells carry their fleet parameters and must run through the
/// multi-tenant scheduler (sched::run_cell / sched::run_matrix);
/// dist::run_scenario rejects them.
struct Scenario {
  std::string name;
  SessionConfig config;
  std::optional<FleetCell> fleet;
};

/// Parses an engine token ("simulated" | "threads" | "sockets").  Shared by
/// the spec
/// parser and run_scenarios' --engine flag so the token set lives in one
/// place.  Throws util::CheckError on unknown tokens.
Engine parse_engine(const std::string& token);

/// Parses a spec text block.  Unknown keys, empty axes and malformed values
/// throw util::CheckError with the offending line.
MatrixSpec parse_matrix_spec(std::string_view text);

/// Cartesian expansion in the documented axis order.
std::vector<Scenario> expand(const MatrixSpec& spec);

struct ScenarioMetrics {
  std::string name;
  double final_loss = 0.0;
  double final_quality = 0.0;
  double mean_selected_fraction = 0.0;
  double simulated_wall_seconds = 0.0;
  /// Measured bytes-on-wire over the whole session (comm-codec payloads at
  /// the proxy dimension; pushes plus PS pulls).
  std::size_t wire_bytes = 0;
  /// Measured bytes relative to dense-fp32 traffic on the same schedule
  /// (SessionResult::effective_wire_ratio).
  double effective_ratio = 0.0;
  double mean_staleness = 0.0;
  std::vector<std::size_t> staleness_histogram;
  /// Jain's fairness index over the cell's per-tenant mean link shares
  /// (fleet cells only; repeated on every tenant line of the cell).
  /// Negative = not a fleet cell; the field is then neither rendered nor
  /// compared.
  double jain = -1.0;

  /// Real measured wall-clock (threads engine; 0 under the simulated
  /// engine).  Rendered only when format_metrics is asked to include the
  /// measured columns, parsed when present, and never golden-compared —
  /// hardware time is not reproducible.
  double measured_wall_seconds = 0.0;
  double measured_compute_seconds = 0.0;
  double measured_comm_seconds = 0.0;
};

/// Projects a finished session onto golden-comparable metrics under `name`.
/// Shared by run_scenario and the fleet scheduler's per-tenant lines so both
/// report through identical arithmetic.
ScenarioMetrics metrics_from_session(std::string name,
                                     const SessionResult& result);

/// Runs one cell.  Forces the analytic device model so the event timeline —
/// and therefore every metric — is a deterministic function of the spec.
/// Throws util::CheckError on fleet cells: they need the multi-tenant
/// scheduler (sched::run_cell), which this module cannot depend on.
ScenarioMetrics run_scenario(const Scenario& scenario);

/// Runs every cell of the matrix in expansion order.  Rejects fleet specs
/// like run_scenario; sched::run_matrix handles both kinds.
std::vector<ScenarioMetrics> run_matrix(const MatrixSpec& spec);

/// Stable text rendering, one cell per line — the golden-file format.  Equal
/// metric vectors render to byte-identical text (the determinism check).
/// `include_measured` appends the measured-seconds columns (mwall/mcomp/
/// mcomm) for human consumption; golden files and determinism comparisons
/// must leave it off — measured hardware time differs run to run.
std::string format_metrics(std::span<const ScenarioMetrics> metrics,
                           bool include_measured = false);

struct GoldenTolerance {
  double loss_rel = 0.05;
  double quality_abs = 0.05;     ///< quality values are fractions in [0, 1]
  double fraction_rel = 0.10;
  double wall_rel = 0.10;
  /// Measured bytes-on-wire (and effective ratio) may drift with
  /// cross-compiler training jitter, but a >10% regression is a real wire
  /// format / selection change — the CI gate the codec goldens hang off.
  double wire_rel = 0.10;
  double staleness_abs = 0.5;    ///< tolerance on the histogram mean
  /// Jain's index lives in (0, 1]; small drift is training jitter, a larger
  /// move means the fair-share allocation itself changed.
  double jain_abs = 0.02;
};

struct GoldenReport {
  bool ok = true;
  std::vector<std::string> diffs;  ///< human-readable mismatch descriptions
};

/// Compares fresh metrics against golden-file text: the cell sets must match
/// exactly; per-cell fields must agree within `tolerance`.  The total
/// histogram count (gradients applied) must match exactly.
GoldenReport compare_with_golden(std::span<const ScenarioMetrics> metrics,
                                 std::string_view golden_text,
                                 const GoldenTolerance& tolerance = {});

}  // namespace sidco::dist
