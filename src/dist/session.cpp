#include "dist/session.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <utility>

#include "comm/aggregate.h"
#include "comm/codec.h"
#include "dist/event_sim.h"
#include "dist/session_detail.h"
#include "dist/worker.h"
#include "nn/optimizer.h"
#include "runtime/process_session.h"
#include "runtime/threaded_session.h"
#include "tensor/sparse.h"
#include "util/check.h"

namespace sidco::dist {

std::string_view topology_name(Topology topology) {
  switch (topology) {
    case Topology::kAllreduce: return "allgather";
    case Topology::kParameterServer: return "ps";
  }
  return "unknown";
}

std::string_view engine_name(Engine engine) {
  switch (engine) {
    case Engine::kSimulated: return "simulated";
    case Engine::kThreads: return "threads";
    case Engine::kSockets: return "sockets";
  }
  return "unknown";
}

QualityMetric benchmark_quality(nn::Benchmark benchmark, double mean_loss,
                                double accuracy) {
  switch (benchmark) {
    case nn::Benchmark::kLstmPtb:
      return {.value = std::exp(mean_loss), .higher_is_better = false};
    case nn::Benchmark::kLstmAn4:
      return {.value = 1.0 - accuracy, .higher_is_better = false};
    default:
      return {.value = accuracy, .higher_is_better = true};
  }
}

double SessionResult::mean_staleness() const {
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t s = 0; s < staleness_histogram.size(); ++s) {
    total += static_cast<double>(staleness_histogram[s]);
    weighted += static_cast<double>(s) *
                static_cast<double>(staleness_histogram[s]);
  }
  return total > 0.0 ? weighted / total : 0.0;
}

std::size_t SessionResult::max_staleness() const {
  for (std::size_t s = staleness_histogram.size(); s > 0; --s) {
    if (staleness_histogram[s - 1] > 0) return s - 1;
  }
  return 0;
}

double SessionResult::effective_wire_ratio() const {
  return total_dense_equiv_bytes == 0
             ? 0.0
             : static_cast<double>(total_wire_bytes) /
                   static_cast<double>(total_dense_equiv_bytes);
}

double SessionResult::throughput_samples_per_second() const {
  if (total_modeled_seconds <= 0.0 || iterations.empty()) return 0.0;
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  const double samples = static_cast<double>(config.workers) *
                         static_cast<double>(spec.batch_size) *
                         static_cast<double>(iterations.size());
  return samples / total_modeled_seconds;
}

std::vector<double> SessionResult::loss_series() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const IterationRecord& it : iterations) out.push_back(it.train_loss);
  return out;
}

std::vector<double> SessionResult::achieved_ratio_series() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const IterationRecord& it : iterations) {
    out.push_back(it.achieved_ratio);
  }
  return out;
}

namespace detail {

void validate_config(const SessionConfig& config) {
  util::check(config.workers >= 1, "session needs >= 1 worker");
  util::check(config.iterations >= 1, "session needs >= 1 iteration");
  util::check(config.target_ratio > 0.0 && config.target_ratio <= 1.0,
              "target ratio must be in (0, 1]");
  util::check(config.eval_batches >= 1, "session needs >= 1 eval batch");
  util::check(config.overlap_chunks >= 1, "session needs >= 1 overlap chunk");
  util::check(config.channel_capacity >= 1,
              "session needs >= 1 channel capacity slot");
  util::check(config.worker_time_scale.empty() ||
                  config.worker_time_scale.size() == config.workers,
              "worker_time_scale must be empty or one entry per worker");
  for (double s : config.worker_time_scale) {
    util::check(s > 0.0, "worker time scale must be positive");
  }

  const FaultInjectionConfig& f = config.fault;
  const double probs[] = {f.drop, f.delay, f.duplicate, f.reorder, f.corrupt};
  double prob_sum = 0.0;
  for (double p : probs) {
    util::check(p >= 0.0 && p <= 1.0,
                "fault probabilities must be in [0, 1]");
    prob_sum += p;
  }
  util::check(prob_sum <= 1.0,
              "fault probabilities must sum to <= 1 (one fault per message)");
  util::check(f.delay_slots >= 1, "fault delay_slots must be >= 1");
  util::check(f.partition_worker == FaultInjectionConfig::kNone ||
                  f.partition_worker < config.workers,
              "fault partition_worker out of range");
  util::check(f.kill_worker == FaultInjectionConfig::kNone ||
                  f.kill_worker < config.workers,
              "fault kill_worker out of range");
  util::check((f.cut_from == FaultInjectionConfig::kNone) ==
                  (f.cut_to == FaultInjectionConfig::kNone),
              "fault cut_from and cut_to must be set together");
  if (f.cut_from != FaultInjectionConfig::kNone) {
    util::check(f.cut_from <= config.workers && f.cut_to <= config.workers &&
                    f.cut_from != f.cut_to,
                "fault cut link endpoints out of range");
  }
  if (config.engine == Engine::kSimulated) {
    util::check(!f.any() && !config.reliability.enabled,
                "fault injection / reliable delivery require a real engine "
                "(threads or sockets)");
  }
  if (f.kill_worker != FaultInjectionConfig::kNone ||
      f.cut_from != FaultInjectionConfig::kNone) {
    util::check(config.engine == Engine::kSockets,
                "process-kill and link-cut faults require the sockets engine");
  }
  if (config.on_worker_failure == FailurePolicy::kEvict) {
    util::check(config.topology == Topology::kParameterServer,
                "worker eviction requires the parameter-server topology");
    util::check(config.reliability.enabled,
                "worker eviction requires reliability.enabled (eviction "
                "needs confirmed death, not a guess)");
  }
  util::check(config.reliability.max_retries >= 1,
              "reliability.max_retries must be >= 1");
  util::check(config.reliability.window >= 1,
              "reliability.window must be >= 1");
  util::check(config.reliability.backoff_initial_ms > 0.0 &&
                  config.reliability.backoff_max_ms >=
                      config.reliability.backoff_initial_ms,
              "reliability backoff must be positive and max >= initial");
  util::check(config.reliability.silence_timeout_seconds > 0.0 &&
                  config.reliability.heartbeat_interval_seconds > 0.0,
              "reliability timeouts must be positive");
  util::check(config.deadline_seconds >= 0.0,
              "deadline_seconds must be >= 0");

  // Autotune bounds: validate up front so a bad matrix cell fails before
  // training starts.  validate_autotune_config keeps max_ratio < 1, which
  // also satisfies SidcoCompressor's stricter (0, 1) retune domain.
  core::validate_autotune_config(config.autotune);
}

// Identical replicas with private streams; the seed derivation is shared by
// every driver (and frozen: run_session_reference depends on it).
std::unique_ptr<Worker> make_worker(const SessionConfig& config,
                                    std::size_t w) {
  auto worker = std::make_unique<Worker>(
      config.benchmark, config.seed, config.seed * 0x10001ULL + 7919 * w + 1,
      config.scheme, config.target_ratio, config.error_feedback);
  if (config.autotune.enabled() && config.scheme != core::Scheme::kNone) {
    // Every engine builds its workers through here, so arming the controller
    // at construction — with the same deterministic pricing models the
    // session's timing uses — keeps autotuned runs bit-identical across
    // engines for free: decisions depend only on the worker's own numerics.
    const TimingContext t = make_timing(config, worker->gradient_dimension());
    worker->enable_autotune(
        config.autotune,
        WorkerAutotuneModel{
            .network = t.network,
            .device = t.device,
            .scheme = config.scheme,
            .collective = config.topology == Topology::kAllreduce,
            .timing_dim = t.timing_dim,
            .base_compute = t.base_compute,
            .scale = worker_scale(config, w)});
  }
  return worker;
}

std::vector<std::unique_ptr<Worker>> make_workers(
    const SessionConfig& config) {
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config.workers);
  for (std::size_t w = 0; w < config.workers; ++w) {
    workers.push_back(make_worker(config, w));
  }
  return workers;
}

double worker_scale(const SessionConfig& config, std::size_t w) {
  return config.worker_time_scale.empty() ? 1.0
                                          : config.worker_time_scale[w];
}

// Scales a measured proxy-dimension payload size to the timing dimension
// (headers and per-element costs scale linearly — a conservative model of
// re-encoding the same density at paper scale).
std::size_t payload_timing_bytes(std::size_t measured_bytes, std::size_t dim,
                                 std::size_t timing_dim) {
  if (timing_dim == dim) return measured_bytes;
  const double scaled = static_cast<double>(measured_bytes) *
                        static_cast<double>(timing_dim) /
                        static_cast<double>(dim);
  return static_cast<std::size_t>(std::ceil(std::max(scaled, 1.0)));
}

// Mean measured push-payload bytes per worker this iteration, scaled to the
// timing dimension.  Shared verbatim by every engine and the frozen
// reference loop — their timing bit-identity contract rests on running the
// exact same arithmetic here.
std::size_t mean_push_timing_bytes(std::span<const StepScalars> steps,
                                   std::size_t dim, std::size_t timing_dim) {
  double sum = 0.0;
  for (const StepScalars& s : steps) {
    sum += static_cast<double>(s.wire_bytes);
  }
  const double mean = sum / static_cast<double>(steps.size());
  const double scaled =
      mean * static_cast<double>(timing_dim) / static_cast<double>(dim);
  return static_cast<std::size_t>(std::ceil(std::max(scaled, 1.0)));
}

std::size_t mean_push_timing_bytes(const std::vector<WorkerStepResult>& steps,
                                   std::size_t dim, std::size_t timing_dim) {
  // One double-precision sum in worker order, exactly as the span overload:
  // the two call paths must stay bit-identical (and allocation-free — this
  // sits on every session iteration).
  double sum = 0.0;
  for (const WorkerStepResult& s : steps) {
    sum += static_cast<double>(s.wire_bytes);
  }
  const double mean = sum / static_cast<double>(steps.size());
  const double scaled =
      mean * static_cast<double>(timing_dim) / static_cast<double>(dim);
  return static_cast<std::size_t>(std::ceil(std::max(scaled, 1.0)));
}

/// Modeled allreduce seconds of the uncompressed wire payload (a dense fp32
/// comm-codec message at the proxy dimension, scaled to timing_dim) — the
/// anchor from which compute time is pinned so that for the uncompressed run
/// comm / (comm + compute) reproduces the benchmark's measured communication
/// overhead by construction.  Every uncompressed worker push serializes to
/// exactly this payload, so the identity is exact, headers included.
double dense_payload_comm_seconds(const NetworkModel& network, std::size_t dim,
                                  std::size_t timing_dim) {
  return network.dense_allreduce_seconds(payload_timing_bytes(
      comm::encoded_dense_bytes(dim, comm::ValueMode::kFp32), dim,
      timing_dim));
}

TimingContext make_timing(const SessionConfig& config, std::size_t dim) {
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  NetworkConfig net_config = config.network;
  net_config.workers = config.workers;
  TimingContext t{.network = NetworkModel(net_config),
                  .device = DeviceModel(config.device),
                  .dim = dim,
                  .timing_dim =
                      config.paper_scale_timing ? spec.paper_parameters : dim};
  t.dense_comm = dense_payload_comm_seconds(t.network, dim, t.timing_dim);
  const double overhead = spec.comm_overhead;
  util::check(overhead > 0.0 && overhead < 1.0,
              "benchmark comm overhead must be in (0, 1)");
  t.base_compute = t.dense_comm * (1.0 - overhead) / overhead;
  return t;
}

// Per-iteration compression seconds shared across workers (legacy
// semantics: analytic model at the worst-case stage count, measured-CPU
// latency averaged over workers).
double common_compression_seconds(const SessionConfig& config,
                                  const TimingContext& t, int max_stages,
                                  double mean_measured) {
  if (config.scheme == core::Scheme::kNone) return 0.0;
  return config.device == Device::kCpuMeasured
             ? t.device.compression_seconds(config.scheme, t.timing_dim,
                                            config.target_ratio, mean_measured,
                                            t.dim)
             : t.device.gpu_seconds(config.scheme, t.timing_dim,
                                    config.target_ratio, max_stages);
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

IterationRecord collective_iteration_record(const SessionConfig& config,
                                            const TimingContext& timing,
                                            std::span<const StepScalars> steps,
                                            std::span<double> produce) {
  const std::size_t n = steps.size();
  const bool wired = n > 1;
  const std::size_t dim = timing.dim;
  const std::size_t chunks = config.overlap_chunks;

  IterationRecord record;
  double nnz = 0.0;
  double measured = 0.0;
  int stages = 1;
  double max_scale = 0.0;
  for (std::size_t w = 0; w < n; ++w) {
    record.train_loss += steps[w].train_loss;
    record.train_accuracy += steps[w].train_accuracy;
    nnz += static_cast<double>(steps[w].nnz);
    measured += steps[w].measured_compression;
    stages = std::max(stages, steps[w].stages_used);
    max_scale = std::max(max_scale, worker_scale(config, w));
    if (wired) record.wire_bytes += steps[w].wire_bytes;
  }
  const auto nd = static_cast<double>(n);
  record.train_loss /= nd;
  record.train_accuracy /= nd;
  nnz /= nd;
  measured /= nd;
  record.achieved_ratio = nnz / static_cast<double>(dim);
  record.stages_used = stages;

  const double compression =
      common_compression_seconds(config, timing, stages, measured);
  const std::size_t total_bytes =
      mean_push_timing_bytes(steps, dim, timing.timing_dim);
  const std::size_t chunk_bytes = ceil_div(total_bytes, chunks);
  const double chunk_comm =
      config.scheme == core::Scheme::kNone
          ? timing.network.dense_allreduce_seconds(chunk_bytes)
          : timing.network.sparse_allgather_seconds(chunk_bytes);
  for (std::size_t w = 0; w < n; ++w) {
    produce[w] =
        worker_scale(config, w) * (timing.base_compute + compression);
  }
  record.compute_seconds = max_scale * timing.base_compute;
  record.compression_seconds = max_scale * compression;
  record.communication_seconds = static_cast<double>(chunks) * chunk_comm;
  record.modeled_wall_seconds =
      overlapped_iteration_seconds(produce, chunks, chunk_comm);
  return record;
}

void finalize_result(SessionResult& result) {
  const EvalRecord& final_eval = result.evals.back();
  const QualityMetric quality = benchmark_quality(
      result.config.benchmark, final_eval.loss, final_eval.accuracy);
  result.final_loss = final_eval.loss;
  result.final_quality = quality.value;
  result.quality_higher_is_better = quality.higher_is_better;
}

void ps_round_record(const SessionConfig& config, const TimingContext& timing,
                     std::span<const PsPartScalars> parts,
                     IterationRecord& record,
                     std::vector<std::size_t>& staleness_histogram) {
  const std::size_t n = parts.size();
  const bool wired = n > 1;
  double nnz = 0.0;
  double max_compression = 0.0;
  int stages = 1;
  double max_scale = 0.0;
  for (std::size_t w = 0; w < n; ++w) {
    const PsPartScalars& p = parts[w];
    record.train_loss += p.train_loss;
    record.train_accuracy += p.train_accuracy;
    nnz += static_cast<double>(p.nnz);
    max_compression = std::max(max_compression, p.compression_seconds);
    stages = std::max(stages, p.stages_used);
    staleness_histogram[p.staleness] += 1;
    max_scale = std::max(max_scale, worker_scale(config, w));
    if (wired) record.wire_bytes += p.wire_bytes;
  }
  const auto nd = static_cast<double>(n);
  record.train_loss /= nd;
  record.train_accuracy /= nd;
  record.achieved_ratio = nnz / nd / static_cast<double>(timing.dim);
  record.stages_used = stages;
  record.compute_seconds = max_scale * timing.base_compute;
  record.compression_seconds = max_compression;
}

std::size_t PsApplyState::apply_round_mean(
    std::span<const std::span<const std::uint8_t>> payloads,
    std::size_t dense_dim, nn::SgdOptimizer& optimizer,
    std::span<float> server_params) {
  // Accumulate over the decoded wire payloads, in worker order —
  // bit-identical to the dense reference mean of the decoded gradients.
  accumulator.reset(dense_dim);
  const auto agg_scale =
      static_cast<float>(1.0 / static_cast<double>(payloads.size()));
  for (const std::span<const std::uint8_t> payload : payloads) {
    accumulator.accumulate_encoded(payload, agg_scale);
  }
  const std::span<const float> mean = accumulator.dense();

  // Serialize the round's mean update as it would be pulled: the union of
  // worker supports densifies, and the measured payload — not an analytic
  // nnz estimate — is what pulls pay for.
  const std::size_t pull_bytes = comm::encode_dense_or_sparse(
      mean, comm::ValueMode::kFp32, update_scratch, update_encoded);

  optimizer.step(server_params, mean);
  return pull_bytes;
}

}  // namespace detail

namespace {

using namespace detail;  // the drivers share the engine-common helpers

void run_worker_steps(const SessionConfig& config,
                      std::vector<std::unique_ptr<Worker>>& workers,
                      std::size_t batch_size,
                      std::vector<WorkerStepResult>& steps) {
  if (config.parallel_workers && config.workers > 1) {
    std::vector<std::future<WorkerStepResult>> futures;
    futures.reserve(config.workers);
    for (auto& worker : workers) {
      futures.push_back(std::async(std::launch::async, [&worker, batch_size] {
        return worker->step(batch_size);
      }));
    }
    for (std::size_t w = 0; w < config.workers; ++w) {
      steps[w] = futures[w].get();
    }
  } else {
    for (std::size_t w = 0; w < config.workers; ++w) {
      steps[w] = workers[w]->step(batch_size);
    }
  }
}

// ---------------------------------------------------------------------------
// Synchronous collective driver (event-runtime timing: heterogeneous worker
// speeds and chunked compute/communication overlap; lock-step numerics
// identical to run_session_reference).
// ---------------------------------------------------------------------------
SessionResult run_allreduce(const SessionConfig& config) {
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  std::vector<std::unique_ptr<Worker>> workers = make_workers(config);

  SessionResult result;
  result.config = config;
  const std::size_t dim = workers.front()->gradient_dimension();
  result.gradient_dimension = dim;
  const TimingContext timing = make_timing(config, dim);

  const bool wired = config.workers > 1;
  std::vector<WorkerStepResult> steps(config.workers);
  std::vector<StepScalars> scalars(config.workers);
  std::vector<double> produce(config.workers, 0.0);
  comm::SparseAccumulator accumulator;
  const std::size_t eval_batch = std::max<std::size_t>(spec.batch_size, 1);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    run_worker_steps(config, workers, spec.batch_size, steps);

    // Collective exchange over the actual wire payloads: every replica
    // decodes all workers' encoded gradients and reduces them to the mean
    // (bit-identical to the dense reference mean), then applies the same
    // averaged gradient synchronously.
    accumulator.reset(dim);
    const auto agg_scale =
        static_cast<float>(1.0 / static_cast<double>(config.workers));
    for (const WorkerStepResult& s : steps) {
      accumulator.accumulate_encoded(s.encoded, agg_scale);
    }
    for (auto& worker : workers) worker->apply_update(accumulator.dense());

    for (std::size_t w = 0; w < config.workers; ++w) {
      scalars[w] = {.nnz = steps[w].sparse.nnz(),
                    .wire_bytes = steps[w].wire_bytes,
                    .train_loss = steps[w].train_loss,
                    .train_accuracy = steps[w].train_accuracy,
                    .measured_compression =
                        steps[w].measured_compression_seconds,
                    .stages_used = steps[w].stages_used};
    }
    const IterationRecord record =
        collective_iteration_record(config, timing, scalars, produce);
    result.total_wire_bytes += record.wire_bytes;
    if (wired) {
      result.total_dense_equiv_bytes +=
          config.workers * NetworkModel::dense_bytes(dim);
    }
    result.total_modeled_seconds += record.wall_seconds();
    result.iterations.push_back(record);

    const bool last = iter + 1 == config.iterations;
    const bool scheduled =
        config.eval_every > 0 && (iter + 1) % config.eval_every == 0;
    if (scheduled || last) {
      const nn::LossResult eval =
          workers.front()->evaluate(eval_batch, config.eval_batches);
      result.evals.push_back({.iteration = iter + 1,
                              .loss = eval.loss,
                              .accuracy = eval.accuracy,
                              .quality = benchmark_quality(config.benchmark,
                                                           eval.loss,
                                                           eval.accuracy)
                                             .value});
      if (last) break;  // do not evaluate the final iteration twice
    }
  }

  const std::span<const float> params = workers.front()->parameters();
  result.final_parameters.assign(params.begin(), params.end());
  result.staleness_histogram.assign(
      1, config.workers * result.iterations.size());
  finalize_result(result);
  return result;
}

// ---------------------------------------------------------------------------
// Bounded-staleness parameter-server driver (fully event-driven).
// ---------------------------------------------------------------------------

/// One worker's contribution to a round, staged until the round aggregates.
struct RoundPart {
  tensor::SparseGradient sparse;
  std::vector<std::uint8_t> encoded;  ///< the wire payload actually pushed
  std::size_t wire_bytes = 0;         ///< encoded.size(), proxy dimension
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double compression_seconds = 0.0;  ///< modeled, speed-scaled
  int stages_used = 1;
  std::size_t staleness = 0;  ///< applied rounds missing at compute time
};

struct RoundBucket {
  std::vector<RoundPart> parts;
  std::size_t arrived = 0;
};

SessionResult run_parameter_server(const SessionConfig& config) {
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  std::vector<std::unique_ptr<Worker>> workers = make_workers(config);

  SessionResult result;
  result.config = config;
  const std::size_t dim = workers.front()->gradient_dimension();
  result.gradient_dimension = dim;
  const TimingContext timing = make_timing(config, dim);

  const std::size_t n = config.workers;
  const std::size_t rounds = config.iterations;
  const std::size_t slack = config.staleness_bound;
  const std::size_t eval_batch = std::max<std::size_t>(spec.batch_size, 1);

  // Canonical server state: the replicas all start bit-identical, so the
  // server copy is worker 0's initial parameters, updated through one
  // canonical optimizer (the s == 0 degeneracy to the synchronous session
  // rests on every update flowing through this single state).
  const std::span<const float> init = workers.front()->parameters();
  std::vector<float> server_params(init.begin(), init.end());
  nn::SgdOptimizer server_optimizer(spec.optimizer);

  // A dedicated evaluation head: same model seed (identical architecture +
  // init) and same dataset stream as every worker's held-out batches; its
  // parameters are overwritten with the server copy before each eval.
  Worker eval_head(config.benchmark, config.seed,
                   eval_head_stream_seed(config), core::Scheme::kNone, 1.0,
                   false);

  EventQueue queue;
  // The server NIC: pushes and pulls serialize in event order.  A single
  // worker trains locally — nothing crosses the wire (matching NetworkModel's
  // collectives, which return 0 for one worker).
  FifoLink link(timing.network.link_bytes_per_second(),
                timing.network.link_latency_seconds());
  const bool wired = n > 1;

  std::vector<RoundBucket> buckets(rounds);
  for (auto& b : buckets) b.parts.resize(n);
  std::vector<std::size_t> pull_bytes_of_round(rounds, 0);
  std::vector<double> apply_time(rounds, 0.0);
  std::size_t version = 0;  // rounds applied so far

  // Server-side aggregation state (decoded-payload accumulation + the
  // pull-payload scratch), shared with the threaded engine via detail so
  // both apply rounds through literally the same code.  All reused.
  PsApplyState apply_state;
  std::vector<std::span<const std::uint8_t>> payload_spans(n);
  std::vector<PsPartScalars> part_scalars(n);

  std::vector<std::size_t> worker_version(n, 0);  // version last pulled
  std::vector<bool> blocked(n, false);
  std::vector<std::size_t> blocked_round(n, 0);

  result.staleness_histogram.assign(slack + 1, 0);
  result.iterations.resize(rounds);

  // Runs the real forward/backward/compress step for (w, round) at simulated
  // time `now`, stages the gradient into the round bucket, and schedules the
  // step-completion event.
  const auto compute = [&](std::size_t w, std::size_t round, double now) {
    WorkerStepResult step = workers[w]->step(spec.batch_size);
    // Per-part modeled compression: the shared engine dispatch evaluated at
    // this part's stage count / measured latency.  The threaded PS engine
    // prices its parts through the exact same helper.
    const double compression = common_compression_seconds(
        config, timing, step.stages_used, step.measured_compression_seconds);
    const double scale = worker_scale(config, w);
    RoundPart& part = buckets[round].parts[w];
    part.sparse = std::move(step.sparse);
    part.encoded = std::move(step.encoded);
    part.wire_bytes = step.wire_bytes;
    part.train_loss = step.train_loss;
    part.train_accuracy = step.train_accuracy;
    part.compression_seconds = scale * compression;
    part.stages_used = step.stages_used;
    part.staleness = round - worker_version[w];
    queue.push(now + scale * (timing.base_compute + compression), w,
               EventKind::kStepDone, round);
  };

  // Moves worker w to `round`: blocks on the staleness guard, pulls fresh
  // parameters when the server has moved on, then computes.
  const auto start_round = [&](std::size_t w, std::size_t round, double now) {
    if (round >= rounds) return;  // this worker is done
    if (version + slack < round) {
      blocked[w] = true;
      blocked_round[w] = round;
      return;
    }
    if (worker_version[w] < version) {
      std::size_t bytes = 0;
      for (std::size_t r = worker_version[w]; r < version; ++r) {
        bytes += pull_bytes_of_round[r];
      }
      if (wired) {
        // One pull event ships the missed round updates; a dense system
        // would ship the parameter vector once.
        result.total_wire_bytes += bytes;
        result.total_dense_equiv_bytes += NetworkModel::dense_bytes(dim);
      }
      // Snapshot semantics: the transfer carries the parameters as of pull
      // start, so the replica is overwritten now and compute begins when the
      // wire drains.
      workers[w]->overwrite_parameters(server_params);
      worker_version[w] = version;
      queue.push(wired ? link.transfer(
                             now, payload_timing_bytes(bytes, dim,
                                                       timing.timing_dim))
                       : now,
                 w, EventKind::kPullDone, round);
      return;
    }
    compute(w, round, now);
  };

  // Applies round r (all n contributions arrived) at simulated time `now`.
  const auto apply_round = [&](std::size_t r, double now) {
    RoundBucket& bucket = buckets[r];
    for (std::size_t w = 0; w < n; ++w) {
      const RoundPart& p = bucket.parts[w];
      payload_spans[w] = p.encoded;
      part_scalars[w] = {.nnz = p.sparse.nnz(),
                         .wire_bytes = p.wire_bytes,
                         .train_loss = p.train_loss,
                         .train_accuracy = p.train_accuracy,
                         .compression_seconds = p.compression_seconds,
                         .stages_used = p.stages_used,
                         .staleness = p.staleness};
    }
    pull_bytes_of_round[r] = apply_state.apply_round_mean(
        payload_spans, dim, server_optimizer, server_params);
    version = r + 1;
    apply_time[r] = now;

    IterationRecord& record = result.iterations[r];
    ps_round_record(config, timing, part_scalars, record,
                    result.staleness_histogram);
    result.total_wire_bytes += record.wire_bytes;
    if (wired) {
      result.total_dense_equiv_bytes += n * NetworkModel::dense_bytes(dim);
    }
    record.modeled_wall_seconds = r == 0 ? now : now - apply_time[r - 1];
    // Exposed (non-overlapped) transfer + wait time of the round.
    record.communication_seconds =
        std::max(0.0, record.modeled_wall_seconds - record.compute_seconds -
                          record.compression_seconds);

    const bool last = r + 1 == rounds;
    const bool scheduled =
        config.eval_every > 0 && (r + 1) % config.eval_every == 0;
    if (scheduled || last) {
      eval_head.overwrite_parameters(server_params);
      const nn::LossResult eval =
          eval_head.evaluate(eval_batch, config.eval_batches);
      result.evals.push_back({.iteration = r + 1,
                              .loss = eval.loss,
                              .accuracy = eval.accuracy,
                              .quality = benchmark_quality(config.benchmark,
                                                           eval.loss,
                                                           eval.accuracy)
                                             .value});
    }

    // The new version may release workers parked on the staleness guard.
    for (std::size_t w = 0; w < n; ++w) {
      if (blocked[w] && version + slack >= blocked_round[w]) {
        blocked[w] = false;
        queue.push(now, w, EventKind::kWake, blocked_round[w]);
      }
    }
    bucket.parts.clear();
    bucket.parts.shrink_to_fit();
  };

  for (std::size_t w = 0; w < n; ++w) start_round(w, 0, 0.0);

  while (!queue.empty()) {
    const SimEvent event = queue.pop();
    switch (event.kind) {
      case EventKind::kPullDone:
      case EventKind::kWake:
        if (event.kind == EventKind::kPullDone) {
          compute(event.worker, event.round, event.time);
        } else {
          start_round(event.worker, event.round, event.time);
        }
        break;
      case EventKind::kStepDone: {
        const RoundPart& part = buckets[event.round].parts[event.worker];
        const std::size_t bytes = payload_timing_bytes(
            part.wire_bytes, dim, timing.timing_dim);
        queue.push(wired ? link.transfer(event.time, bytes) : event.time,
                   event.worker, EventKind::kPushArrive, event.round);
        // The device is free as soon as the NIC owns the payload.
        start_round(event.worker, event.round + 1, event.time);
        break;
      }
      case EventKind::kPushArrive: {
        buckets[event.round].arrived += 1;
        // Per-worker pushes traverse the FIFO link in round order, so
        // buckets complete in order and rounds apply in order.
        while (version < rounds && buckets[version].arrived == n) {
          apply_round(version, event.time);
        }
        break;
      }
    }
  }

  util::check(version == rounds,
              "event simulation ended before all rounds were applied");
  result.total_modeled_seconds = apply_time[rounds - 1];
  result.final_parameters = std::move(server_params);
  finalize_result(result);
  return result;
}

}  // namespace

SessionResult run_session(const SessionConfig& config) {
  detail::validate_config(config);
  if (config.engine == Engine::kThreads) {
    // Real worker threads over an in-memory transport (runtime module).
    // The dist -> runtime -> dist dependency cycle is confined to these
    // dispatches; both are static libraries and CMake links the cycle.
    return runtime::run_session_threads(config);
  }
  if (config.engine == Engine::kSockets) {
    // Forked worker processes over real sockets (runtime module).
    return runtime::run_session_processes(config);
  }
  switch (config.topology) {
    case Topology::kAllreduce:
      return run_allreduce(config);
    case Topology::kParameterServer:
      return run_parameter_server(config);
  }
  util::check(false, "unknown session topology");
  return {};
}

// ---------------------------------------------------------------------------
// Frozen pre-event-runtime synchronous loop.  Regression oracle for the
// event drivers above — its control flow must not be modified alongside them
// (that is the point).  Byte accounting is the one shared piece: both sides
// price communication from the measured wire payloads via the exact same
// helper (mean_push_timing_bytes), so the timing bit-identity contract keeps
// holding while the payload model evolves.
// ---------------------------------------------------------------------------
SessionResult run_session_reference(const SessionConfig& config) {
  util::check(config.workers >= 1, "session needs >= 1 worker");
  util::check(config.iterations >= 1, "session needs >= 1 iteration");
  util::check(config.target_ratio > 0.0 && config.target_ratio <= 1.0,
              "target ratio must be in (0, 1]");
  util::check(config.eval_batches >= 1, "session needs >= 1 eval batch");

  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  NetworkConfig net_config = config.network;
  net_config.workers = config.workers;
  const NetworkModel network(net_config);
  const DeviceModel device(config.device);

  // Independent worker replicas: identical model seed, private streams.
  std::vector<std::unique_ptr<Worker>> workers = make_workers(config);

  SessionResult result;
  result.config = config;
  const std::size_t dim = workers.front()->gradient_dimension();
  result.gradient_dimension = dim;

  // Timing is evaluated at the proxy dimension or Table 1's paper scale.
  const std::size_t timing_dim =
      config.paper_scale_timing ? spec.paper_parameters : dim;
  const double dense_comm =
      dense_payload_comm_seconds(network, dim, timing_dim);
  // Compute time is pinned so that comm / (comm + compute) reproduces the
  // benchmark's measured communication overhead (Table 1) by construction.
  const double overhead = spec.comm_overhead;
  util::check(overhead > 0.0 && overhead < 1.0,
              "benchmark comm overhead must be in (0, 1)");
  const double compute_seconds = dense_comm * (1.0 - overhead) / overhead;

  std::vector<WorkerStepResult> steps(config.workers);
  const std::size_t eval_batch =
      std::max<std::size_t>(spec.batch_size, 1);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    run_worker_steps(config, workers, spec.batch_size, steps);

    // Modeled sparse allgather + exact mean aggregation, then a synchronous
    // update of every replica with the same averaged gradient.
    std::vector<tensor::SparseGradient> parts;
    parts.reserve(config.workers);
    for (WorkerStepResult& s : steps) parts.push_back(std::move(s.sparse));
    const std::vector<float> mean = tensor::aggregate_mean(
        parts, dim, static_cast<double>(config.workers));
    for (auto& worker : workers) worker->apply_update(mean);

    IterationRecord record;
    double nnz = 0.0;
    double measured = 0.0;
    int stages = 1;
    const bool wired = config.workers > 1;
    for (std::size_t w = 0; w < config.workers; ++w) {
      record.train_loss += steps[w].train_loss;
      record.train_accuracy += steps[w].train_accuracy;
      nnz += static_cast<double>(parts[w].nnz());
      measured += steps[w].measured_compression_seconds;
      stages = std::max(stages, steps[w].stages_used);
      if (wired) record.wire_bytes += steps[w].wire_bytes;
    }
    const auto n = static_cast<double>(config.workers);
    record.train_loss /= n;
    record.train_accuracy /= n;
    nnz /= n;
    measured /= n;
    record.achieved_ratio = nnz / static_cast<double>(dim);
    record.stages_used = stages;
    result.total_wire_bytes += record.wire_bytes;
    if (wired) {
      result.total_dense_equiv_bytes +=
          config.workers * NetworkModel::dense_bytes(dim);
    }

    record.compute_seconds = compute_seconds;
    if (config.scheme == core::Scheme::kNone) {
      record.compression_seconds = 0.0;
      record.communication_seconds = network.dense_allreduce_seconds(
          mean_push_timing_bytes(steps, dim, timing_dim));
    } else {
      record.compression_seconds =
          config.device == Device::kCpuMeasured
              ? device.compression_seconds(config.scheme, timing_dim,
                                           config.target_ratio, measured, dim)
              : device.gpu_seconds(config.scheme, timing_dim,
                                   config.target_ratio, stages);
      // The wire carries each worker's measured encoded payload, scaled to
      // timing_dim.
      record.communication_seconds = network.sparse_allgather_seconds(
          mean_push_timing_bytes(steps, dim, timing_dim));
    }
    result.total_modeled_seconds += record.wall_seconds();
    result.iterations.push_back(record);

    const bool last = iter + 1 == config.iterations;
    const bool scheduled =
        config.eval_every > 0 && (iter + 1) % config.eval_every == 0;
    if (scheduled || last) {
      const nn::LossResult eval =
          workers.front()->evaluate(eval_batch, config.eval_batches);
      result.evals.push_back({.iteration = iter + 1,
                              .loss = eval.loss,
                              .accuracy = eval.accuracy,
                              .quality = benchmark_quality(config.benchmark,
                                                           eval.loss,
                                                           eval.accuracy)
                                             .value});
      if (last) break;  // do not evaluate the final iteration twice
    }
  }

  const std::span<const float> params = workers.front()->parameters();
  result.final_parameters.assign(params.begin(), params.end());
  finalize_result(result);
  return result;
}

}  // namespace sidco::dist
