#include "dist/session.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <utility>

#include "dist/worker.h"
#include "tensor/sparse.h"
#include "util/check.h"

namespace sidco::dist {

QualityMetric benchmark_quality(nn::Benchmark benchmark, double mean_loss,
                                double accuracy) {
  switch (benchmark) {
    case nn::Benchmark::kLstmPtb:
      return {.value = std::exp(mean_loss), .higher_is_better = false};
    case nn::Benchmark::kLstmAn4:
      return {.value = 1.0 - accuracy, .higher_is_better = false};
    default:
      return {.value = accuracy, .higher_is_better = true};
  }
}

double SessionResult::throughput_samples_per_second() const {
  if (total_modeled_seconds <= 0.0 || iterations.empty()) return 0.0;
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  const double samples = static_cast<double>(config.workers) *
                         static_cast<double>(spec.batch_size) *
                         static_cast<double>(iterations.size());
  return samples / total_modeled_seconds;
}

std::vector<double> SessionResult::loss_series() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const IterationRecord& it : iterations) out.push_back(it.train_loss);
  return out;
}

std::vector<double> SessionResult::achieved_ratio_series() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const IterationRecord& it : iterations) {
    out.push_back(it.achieved_ratio);
  }
  return out;
}

SessionResult run_session(const SessionConfig& config) {
  util::check(config.workers >= 1, "session needs >= 1 worker");
  util::check(config.iterations >= 1, "session needs >= 1 iteration");
  util::check(config.target_ratio > 0.0 && config.target_ratio <= 1.0,
              "target ratio must be in (0, 1]");
  util::check(config.eval_batches >= 1, "session needs >= 1 eval batch");

  const nn::BenchmarkSpec& spec = nn::benchmark_spec(config.benchmark);
  NetworkConfig net_config = config.network;
  net_config.workers = config.workers;
  const NetworkModel network(net_config);
  const DeviceModel device(config.device);

  // Independent worker replicas: identical model seed, private streams.
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config.workers);
  for (std::size_t w = 0; w < config.workers; ++w) {
    workers.push_back(std::make_unique<Worker>(
        config.benchmark, config.seed, config.seed * 0x10001ULL + 7919 * w + 1,
        config.scheme, config.target_ratio, config.error_feedback));
  }

  SessionResult result;
  result.config = config;
  const std::size_t dim = workers.front()->gradient_dimension();
  result.gradient_dimension = dim;

  // Timing is evaluated at the proxy dimension or Table 1's paper scale.
  const std::size_t timing_dim =
      config.paper_scale_timing ? spec.paper_parameters : dim;
  const double dense_comm =
      network.dense_allreduce_seconds(NetworkModel::dense_bytes(timing_dim));
  // Compute time is pinned so that comm / (comm + compute) reproduces the
  // benchmark's measured communication overhead (Table 1) by construction.
  const double overhead = spec.comm_overhead;
  util::check(overhead > 0.0 && overhead < 1.0,
              "benchmark comm overhead must be in (0, 1)");
  const double compute_seconds = dense_comm * (1.0 - overhead) / overhead;

  std::vector<WorkerStepResult> steps(config.workers);
  const std::size_t eval_batch =
      std::max<std::size_t>(spec.batch_size, 1);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    if (config.parallel_workers && config.workers > 1) {
      std::vector<std::future<WorkerStepResult>> futures;
      futures.reserve(config.workers);
      for (auto& worker : workers) {
        futures.push_back(std::async(std::launch::async, [&worker, &spec] {
          return worker->step(spec.batch_size);
        }));
      }
      for (std::size_t w = 0; w < config.workers; ++w) {
        steps[w] = futures[w].get();
      }
    } else {
      for (std::size_t w = 0; w < config.workers; ++w) {
        steps[w] = workers[w]->step(spec.batch_size);
      }
    }

    // Modeled sparse allgather + exact mean aggregation, then a synchronous
    // update of every replica with the same averaged gradient.
    std::vector<tensor::SparseGradient> parts;
    parts.reserve(config.workers);
    for (WorkerStepResult& s : steps) parts.push_back(std::move(s.sparse));
    const std::vector<float> mean = tensor::aggregate_mean(
        parts, dim, static_cast<double>(config.workers));
    for (auto& worker : workers) worker->apply_update(mean);

    IterationRecord record;
    double nnz = 0.0;
    double measured = 0.0;
    int stages = 1;
    for (std::size_t w = 0; w < config.workers; ++w) {
      record.train_loss += steps[w].train_loss;
      record.train_accuracy += steps[w].train_accuracy;
      nnz += static_cast<double>(parts[w].nnz());
      measured += steps[w].measured_compression_seconds;
      stages = std::max(stages, steps[w].stages_used);
    }
    const auto n = static_cast<double>(config.workers);
    record.train_loss /= n;
    record.train_accuracy /= n;
    nnz /= n;
    measured /= n;
    record.achieved_ratio = nnz / static_cast<double>(dim);
    record.stages_used = stages;

    record.compute_seconds = compute_seconds;
    if (config.scheme == core::Scheme::kNone) {
      record.compression_seconds = 0.0;
      record.communication_seconds = dense_comm;
    } else {
      record.compression_seconds =
          config.device == Device::kCpuMeasured
              ? device.compression_seconds(config.scheme, timing_dim,
                                           config.target_ratio, measured, dim)
              : device.gpu_seconds(config.scheme, timing_dim,
                                   config.target_ratio, stages);
      // The wire carries each worker's k-hat pairs, scaled to timing_dim.
      const double k_timing = record.achieved_ratio *
                              static_cast<double>(timing_dim);
      record.communication_seconds = network.sparse_allgather_seconds(
          NetworkModel::sparse_bytes(static_cast<std::size_t>(
              std::ceil(std::max(k_timing, 1.0)))));
    }
    result.total_modeled_seconds += record.wall_seconds();
    result.iterations.push_back(record);

    const bool last = iter + 1 == config.iterations;
    const bool scheduled =
        config.eval_every > 0 && (iter + 1) % config.eval_every == 0;
    if (scheduled || last) {
      const nn::LossResult eval =
          workers.front()->evaluate(eval_batch, config.eval_batches);
      result.evals.push_back({.iteration = iter + 1,
                              .loss = eval.loss,
                              .accuracy = eval.accuracy,
                              .quality = benchmark_quality(config.benchmark,
                                                           eval.loss,
                                                           eval.accuracy)
                                             .value});
      if (last) break;  // do not evaluate the final iteration twice
    }
  }

  const EvalRecord& final_eval = result.evals.back();
  const QualityMetric quality = benchmark_quality(
      config.benchmark, final_eval.loss, final_eval.accuracy);
  result.final_loss = final_eval.loss;
  result.final_quality = quality.value;
  result.quality_higher_is_better = quality.higher_is_better;
  return result;
}

}  // namespace sidco::dist
