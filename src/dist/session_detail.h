// Shared internals of the session drivers (session.cpp) and the threaded
// runtime engine (runtime/threaded_session.cpp).
//
// Everything here is behavior the engines must agree on *exactly*: worker
// seed derivation, the timing-context arithmetic that pins modeled compute
// to the benchmark's communication overhead, and the measured-payload byte
// scaling.  The bit-identity contracts (event engine vs run_session_reference
// in test_session_async, threads engine vs the same oracle in
// test_runtime_differential) rest on every engine calling these exact
// helpers — change them here and every engine moves together, or not at all.
//
// This header is internal to the dist/runtime pair: not for use by
// application code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/aggregate.h"
#include "dist/session.h"
#include "dist/worker.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"

namespace sidco::dist::detail {

/// Validates the runtime-relevant SessionConfig fields (worker/iteration
/// counts, ratio range, overlap/channel knobs, per-worker speed scales).
void validate_config(const SessionConfig& config);

/// Identical replicas with private streams; the seed derivation is shared by
/// every driver (and frozen: run_session_reference depends on it).
std::vector<std::unique_ptr<Worker>> make_workers(const SessionConfig& config);

/// One replica of the frozen derivation above — what a forked participant of
/// the sockets engine builds for its own rank without instantiating the rest.
std::unique_ptr<Worker> make_worker(const SessionConfig& config,
                                    std::size_t w);

/// Stream seed of the dedicated parameter-server evaluation head (same model
/// seed as the workers, disjoint stream).
inline std::uint64_t eval_head_stream_seed(const SessionConfig& config) {
  return config.seed * 0x10001ULL + 0xe7a1ULL;
}

double worker_scale(const SessionConfig& config, std::size_t w);

/// Scales a measured proxy-dimension payload size to the timing dimension
/// (headers and per-element costs scale linearly — a conservative model of
/// re-encoding the same density at paper scale).
std::size_t payload_timing_bytes(std::size_t measured_bytes, std::size_t dim,
                                 std::size_t timing_dim);

/// Per-worker step scalars a collective driver aggregates: the engine-
/// neutral projection of WorkerStepResult (simulated engine) and of the
/// threaded engine's step reports.
struct StepScalars {
  std::size_t nnz = 0;
  std::size_t wire_bytes = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double measured_compression = 0.0;
  int stages_used = 1;
};

/// Mean measured push-payload bytes per worker this iteration, scaled to the
/// timing dimension.  Shared verbatim by the event driver, the threaded
/// engine and the frozen reference loop — their timing bit-identity
/// contracts rest on running the exact same arithmetic here (both overloads
/// perform the identical double-precision sum in worker order).
std::size_t mean_push_timing_bytes(std::span<const StepScalars> steps,
                                   std::size_t dim, std::size_t timing_dim);
std::size_t mean_push_timing_bytes(const std::vector<WorkerStepResult>& steps,
                                   std::size_t dim, std::size_t timing_dim);

/// Shared timing inputs: modeled compute seconds are pinned so that for the
/// uncompressed synchronous run comm / (comm + compute) reproduces the
/// benchmark's measured communication overhead (Table 1) by construction.
struct TimingContext {
  NetworkModel network;
  DeviceModel device;
  std::size_t dim = 0;
  std::size_t timing_dim = 0;
  double dense_comm = 0.0;
  double base_compute = 0.0;
};

TimingContext make_timing(const SessionConfig& config, std::size_t dim);

/// Per-iteration compression seconds shared across workers (legacy
/// semantics: analytic model at the worst-case stage count, measured-CPU
/// latency averaged over workers).
double common_compression_seconds(const SessionConfig& config,
                                  const TimingContext& t, int max_stages,
                                  double mean_measured);

std::size_t ceil_div(std::size_t a, std::size_t b);

/// Assembles one synchronous-collective IterationRecord (metric means +
/// modeled timing incl. the chunked-overlap schedule) from per-worker step
/// scalars.  Shared by the simulated allgather driver and the threaded
/// engine's coordinator so their records stay bit-identical by
/// construction.  `produce` is caller scratch of size `steps.size()`.
IterationRecord collective_iteration_record(const SessionConfig& config,
                                            const TimingContext& timing,
                                            std::span<const StepScalars> steps,
                                            std::span<double> produce);

/// Fills final_loss / final_quality from the last eval record.
void finalize_result(SessionResult& result);

/// Per-part scalars of one parameter-server round (engine-neutral
/// projection of the simulated driver's RoundPart and the threaded
/// engine's push messages).  `compression_seconds` is the modeled,
/// speed-scaled per-part value (common_compression_seconds x worker scale).
struct PsPartScalars {
  std::size_t nnz = 0;
  std::size_t wire_bytes = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double compression_seconds = 0.0;
  int stages_used = 1;
  std::size_t staleness = 0;
};

/// Fills the engine-shared fields of a PS round record — metric means,
/// achieved ratio, modeled compute/compression, staleness histogram bins,
/// wired push bytes — from the round's per-part scalars (worker order).
/// Timeline-dependent fields (communication_seconds, modeled_wall_seconds)
/// stay with the engine: the event driver derives them from the simulated
/// timeline, the threaded engine measures for real.
void ps_round_record(const SessionConfig& config, const TimingContext& timing,
                     std::span<const PsPartScalars> parts,
                     IterationRecord& record,
                     std::vector<std::size_t>& staleness_histogram);

/// Server-side aggregation state for applying PS rounds, shared by both
/// engines so the decode-accumulate order, the pull-payload serialization
/// and the canonical optimizer step are literally the same code — the
/// staleness-0 bit-identity contract rests on it.  All scratch is reused
/// across rounds.
struct PsApplyState {
  comm::SparseAccumulator accumulator;
  tensor::SparseGradient update_scratch;
  std::vector<std::uint8_t> update_encoded;

  /// Decode-accumulates the round's n encoded payloads in worker order into
  /// the mean, serializes the mean as it would be pulled, and steps the
  /// canonical optimizer.  Returns the measured pull-payload bytes.
  std::size_t apply_round_mean(
      std::span<const std::span<const std::uint8_t>> payloads,
      std::size_t dense_dim, nn::SgdOptimizer& optimizer,
      std::span<float> server_params);
};

}  // namespace sidco::dist::detail
