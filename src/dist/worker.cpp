#include "dist/worker.h"

#include <algorithm>
#include <utility>

#include "data/factory.h"
#include "dist/session_detail.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sidco::dist {

Worker::Worker(nn::Benchmark benchmark, std::uint64_t model_seed,
               std::uint64_t stream_seed, core::Scheme scheme,
               double target_ratio, bool error_feedback)
    : benchmark_(benchmark),
      model_(nn::make_model(benchmark, model_seed)),
      // All workers see the same data distribution; only the sampling
      // stream below differs per worker.
      dataset_(data::make_dataset(benchmark, model_seed ^ 0xd474ULL)),
      compressor_(core::make_compressor(scheme, target_ratio, stream_seed)),
      optimizer_(nn::benchmark_spec(benchmark).optimizer),
      rng_(stream_seed),
      error_feedback_(error_feedback),
      memory_(model_.parameter_count(), 0.0F),
      ec_gradient_(model_.parameter_count(), 0.0F) {}

void Worker::enable_autotune(const core::AutotuneConfig& config,
                             const WorkerAutotuneModel& model) {
  core::validate_autotune_config(config);
  if (!config.enabled() || model.scheme == core::Scheme::kNone) return;
  autotune_.emplace(config, compressor_->target_ratio());
  autotune_model_.emplace(model);
  if (config.wants_gof()) {
    compressor_->enable_fit_diagnostics(config.gof_sample_cap);
  }
  // The controller clamps the starting ratio into its bounds; pin the
  // compressor to it so even the first step honors them.
  if (autotune_->ratio() != compressor_->target_ratio()) {
    compressor_->set_target_ratio(autotune_->ratio());
  }
}

WorkerStepResult Worker::step(std::size_t batch_size) {
  util::check(batch_size >= 1, "batch size must be >= 1");
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(benchmark_);

  const data::Batch batch = dataset_->sample(batch_size, rng_);
  model_.zero_gradients();
  const std::span<const float> logits = model_.forward(batch.inputs, batch_size);
  dlogits_.resize(logits.size());
  const nn::LossResult loss = nn::softmax_cross_entropy(
      logits, batch.labels, spec.classes, dlogits_);
  model_.backward(dlogits_);

  const std::span<const float> grad = model_.gradients();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    ec_gradient_[i] = grad[i] + (error_feedback_ ? memory_[i] : 0.0F);
  }

  // Validate outside the timed window so measured latency reflects only the
  // scheme's own selection work.  The result object is a reused member, so
  // the timed region exercises the steady-state allocation-free path, and
  // the SerialScope keeps kernels inline on this thread: parallel sessions
  // run several workers concurrently, and contending on the shared kernel
  // pool inside the timed window would let one worker's wait on another's
  // job inflate its single-device latency.
  compressors::Compressor::validate_gradient(ec_gradient_);
  util::Timer timer;
  {
    util::ThreadPool::SerialScope single_device;
    compressor_->compress_into_unchecked(ec_gradient_, compressed_);
  }
  const double measured = timer.seconds();

  if (error_feedback_) {
    // Residual = corrected gradient off the selected support (Algorithm 2).
    memory_ = ec_gradient_;
    for (std::size_t j = 0; j < compressed_.sparse.nnz(); ++j) {
      memory_[compressed_.sparse.indices[j]] = 0.0F;
    }
  }

  // Serialize the payload as it would travel (outside the timed window, so
  // measured compression latency stays a pure selection cost).
  comm::encode_gradient(compressed_.sparse, comm::ValueMode::kFp32, encoded_);

  if (autotune_) {
    // Price this step's observables with the deterministic models only —
    // measured CPU seconds never feed the controller, so the decision
    // sequence is a pure function of the numerics every engine shares.
    const WorkerAutotuneModel& m = *autotune_model_;
    const std::size_t bytes = detail::payload_timing_bytes(
        encoded_.size(), model_.parameter_count(), m.timing_dim);
    const double comm = m.collective ? m.network.sparse_allgather_seconds(bytes)
                                     : m.network.link_transfer_seconds(bytes);
    const double compression =
        m.device.gpu_seconds(m.scheme, m.timing_dim,
                             compressor_->target_ratio(),
                             compressed_.stages_used);
    const double compute = m.scale * (m.base_compute + compression);
    const double next = autotune_->observe({.comm_seconds = comm,
                                            .compute_seconds = compute,
                                            .fit_ks = compressed_.fit_ks});
    if (next != compressor_->target_ratio()) {
      compressor_->set_target_ratio(next);
    }
  }

  WorkerStepResult result;
  result.sparse = compressed_.sparse;  // copy: compressed_ keeps its capacity
  result.encoded = encoded_;           // copy: encoded_ keeps its capacity
  result.wire_bytes = encoded_.size();
  result.selected = result.sparse.nnz();
  result.train_loss = loss.loss;
  result.train_accuracy = loss.accuracy;
  result.threshold = compressed_.threshold;
  result.stages_used = compressed_.stages_used;
  result.measured_compression_seconds = measured;
  return result;
}

void Worker::overwrite_parameters(std::span<const float> params) {
  util::check(params.size() == model_.parameter_count(),
              "pulled parameter dimension mismatch");
  std::copy(params.begin(), params.end(), model_.parameters().begin());
}

void Worker::adopt_replica_state(const Worker& source) {
  util::check(source.gradient_dimension() == model_.parameter_count(),
              "replica handoff dimension mismatch");
  overwrite_parameters(source.parameters());
  optimizer_.overwrite_velocity(source.optimizer_.velocity());
}

void Worker::overwrite_error_memory(std::span<const float> residual) {
  util::check(residual.size() == memory_.size(),
              "residual handoff dimension mismatch");
  std::copy(residual.begin(), residual.end(), memory_.begin());
}

void Worker::apply_update(std::span<const float> aggregated_gradient) {
  util::check(aggregated_gradient.size() == model_.parameter_count(),
              "aggregated gradient dimension mismatch");
  optimizer_.step(model_.parameters(), aggregated_gradient);
}

nn::LossResult Worker::evaluate(std::size_t batch_size, std::size_t batches) {
  util::check(batches >= 1, "evaluation needs >= 1 batch");
  const nn::BenchmarkSpec& spec = nn::benchmark_spec(benchmark_);
  double loss = 0.0;
  double accuracy = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    const data::Batch batch = dataset_->eval_batch(batch_size, b);
    const std::span<const float> logits =
        model_.forward(batch.inputs, batch_size);
    const nn::LossResult r =
        nn::softmax_cross_entropy_eval(logits, batch.labels, spec.classes);
    loss += r.loss;
    accuracy += r.accuracy;
  }
  const auto n = static_cast<double>(batches);
  return {.loss = loss / n, .accuracy = accuracy / n};
}

}  // namespace sidco::dist
