#include "dist/network_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace sidco::dist {

double BandwidthTrace::period_seconds() const {
  double period = 0.0;
  for (const Segment& segment : segments) period += segment.seconds;
  return period;
}

double BandwidthTrace::bytes_per_second_at(double t, double flat_gbps) const {
  if (flat()) return flat_gbps * 1e9 / 8.0;
  const double period = period_seconds();
  // Position inside the repeating cycle; guard fmod's sign for t < 0.
  double pos = std::fmod(t, period);
  if (pos < 0.0) pos += period;
  double end = 0.0;
  for (const Segment& segment : segments) {
    end += segment.seconds;
    if (pos < end) return segment.gbps * 1e9 / 8.0;
  }
  // pos == period up to rounding: the cycle wraps to its first segment.
  return segments.front().gbps * 1e9 / 8.0;
}

double BandwidthTrace::next_boundary_after(double t) const {
  if (flat()) return std::numeric_limits<double>::infinity();
  const double period = period_seconds();
  // Cycle start at or before t.  floor() keeps this exact for the in-range
  // times an event simulation produces.
  double base = std::floor(t / period) * period;
  if (base > t) base -= period;
  for (int cycle = 0; cycle < 2; ++cycle) {
    double end = 0.0;
    for (const Segment& segment : segments) {
      end += segment.seconds;
      const double boundary = base + end;
      if (boundary > t) return boundary;
    }
    base += period;
  }
  // Unreachable: base + period > t always holds after the first cycle.
  return base;
}

BandwidthTrace parse_bandwidth_trace(const std::string& token) {
  BandwidthTrace trace{.name = token, .segments = {}};
  if (token == "flat") return trace;
  util::check(!token.empty(), "bandwidth trace token must not be empty");
  std::size_t start = 0;
  while (start <= token.size()) {
    auto plus = token.find('+', start);
    if (plus == std::string::npos) plus = token.size();
    const std::string term = token.substr(start, plus - start);
    start = plus + 1;
    const auto x = term.find('x');
    if (x == std::string::npos) {
      util::check_fail("bandwidth trace term must be '<gbps>x<seconds>': " +
                       term);
    }
    const auto number = [&term](const std::string& text) -> double {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(text, &consumed);
      } catch (const std::exception&) {
        util::check_fail("bandwidth trace term has a malformed number: " +
                         term);
      }
      if (consumed != text.size()) {
        util::check_fail("bandwidth trace term has trailing characters: " +
                         term);
      }
      return value;
    };
    BandwidthTrace::Segment segment{.gbps = number(term.substr(0, x)),
                                    .seconds = number(term.substr(x + 1))};
    if (segment.gbps <= 0.0) {
      util::check_fail("bandwidth trace gbps must be positive: " + term);
    }
    if (segment.seconds <= 0.0) {
      util::check_fail("bandwidth trace seconds must be positive: " + term);
    }
    trace.segments.push_back(segment);
  }
  return trace;
}

NetworkModel::NetworkModel(const NetworkConfig& config) : config_(config) {
  util::check(config.workers >= 1, "network model needs >= 1 worker");
  util::check(config.bandwidth_gbps > 0.0, "bandwidth must be positive");
  util::check(config.latency_us >= 0.0, "latency must be non-negative");
}

double NetworkModel::bytes_per_second() const {
  return config_.bandwidth_gbps * 1e9 / 8.0;
}

double NetworkModel::dense_allreduce_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // Reduce-scatter + allgather: 2 (N-1)/N of the buffer crosses each link,
  // with 2 (N-1) latency hops.
  return 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / bytes_per_second() +
         2.0 * (n - 1.0) * config_.latency_us * 1e-6;
}

double NetworkModel::sparse_allgather_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // Ring allgather: each worker receives N-1 remote payloads.
  return (n - 1.0) * static_cast<double>(bytes) / bytes_per_second() +
         (n - 1.0) * config_.latency_us * 1e-6;
}

double NetworkModel::link_transfer_seconds(std::size_t bytes) const {
  return static_cast<double>(bytes) / bytes_per_second() +
         config_.latency_us * 1e-6;
}

double NetworkModel::parameter_server_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // All N pushes then N pulls serialize on the server's link (the reason
  // bandwidth-optimal collectives win at scale).
  return 2.0 * n * static_cast<double>(bytes) / bytes_per_second() +
         2.0 * config_.latency_us * 1e-6;
}

}  // namespace sidco::dist
