#include "dist/network_model.h"

#include "util/check.h"

namespace sidco::dist {

NetworkModel::NetworkModel(const NetworkConfig& config) : config_(config) {
  util::check(config.workers >= 1, "network model needs >= 1 worker");
  util::check(config.bandwidth_gbps > 0.0, "bandwidth must be positive");
  util::check(config.latency_us >= 0.0, "latency must be non-negative");
}

double NetworkModel::bytes_per_second() const {
  return config_.bandwidth_gbps * 1e9 / 8.0;
}

double NetworkModel::dense_allreduce_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // Reduce-scatter + allgather: 2 (N-1)/N of the buffer crosses each link,
  // with 2 (N-1) latency hops.
  return 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / bytes_per_second() +
         2.0 * (n - 1.0) * config_.latency_us * 1e-6;
}

double NetworkModel::sparse_allgather_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // Ring allgather: each worker receives N-1 remote payloads.
  return (n - 1.0) * static_cast<double>(bytes) / bytes_per_second() +
         (n - 1.0) * config_.latency_us * 1e-6;
}

double NetworkModel::link_transfer_seconds(std::size_t bytes) const {
  return static_cast<double>(bytes) / bytes_per_second() +
         config_.latency_us * 1e-6;
}

double NetworkModel::parameter_server_seconds(std::size_t bytes) const {
  const auto n = static_cast<double>(config_.workers);
  if (config_.workers <= 1) return 0.0;
  // All N pushes then N pulls serialize on the server's link (the reason
  // bandwidth-optimal collectives win at scale).
  return 2.0 * n * static_cast<double>(bytes) / bytes_per_second() +
         2.0 * config_.latency_us * 1e-6;
}

}  // namespace sidco::dist
