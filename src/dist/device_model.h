// Compression-latency model per device (paper Figs. 1, 12, 14-16).
//
// Two modes:
//  - kGpuModel: analytic GPU cost.  Top-k pays a full sort (n log n); DGC
//    samples ~1% (a strided random gather, expensive on GPU) and sorts only
//    the sample; threshold schemes (SIDCo, RedSync, GaussianKSGD) pay cheap
//    streaming passes.  Constants are calibrated so the relative ordering of
//    Fig. 1 holds at paper-scale dimensions.
//  - kCpuMeasured: scales a *measured* proxy latency linearly to the target
//    model dimension, for runs where this process is the compression device.
#pragma once

#include <cstddef>

#include "core/factory.h"

namespace sidco::dist {

enum class Device {
  kGpuModel,     ///< analytic GPU timing model
  kCpuMeasured,  ///< extrapolate from latency measured in-process
};

class DeviceModel {
 public:
  explicit DeviceModel(Device device) : device_(device) {}

  [[nodiscard]] Device device() const { return device_; }

  /// Analytic GPU compression latency for `scheme` on a gradient of dimension
  /// `d` at target ratio `ratio`, with `stages` estimation stages for the
  /// SIDCo variants.
  [[nodiscard]] double gpu_seconds(core::Scheme scheme, std::size_t d,
                                   double ratio, int stages = 1) const;

  /// Latency extrapolated from a measurement: `measured` seconds observed on
  /// a proxy gradient of `measured_dim` elements, scaled linearly to
  /// `model_dim` (compression kernels are bandwidth-bound).
  [[nodiscard]] double compression_seconds(core::Scheme scheme,
                                           std::size_t model_dim, double ratio,
                                           double measured,
                                           std::size_t measured_dim) const;

 private:
  Device device_;
};

}  // namespace sidco::dist
