// Runtime-dispatched SIMD portability shim.
//
// Every vectorized hot path in the tree (the tensor block kernels, the wire
// codec's varint / bitmap / fp16 / bit-pack loops) selects its implementation
// through this one switch:
//
//   - kAvx2   x86-64 AVX2 intrinsics, compiled with a per-function target
//             attribute so the binary still runs on pre-AVX2 hosts;
//   - kNeon   aarch64 NEON (always present on aarch64);
//   - kScalar the portable reference, available everywhere.
//
// The level is detected once at startup (cpuid on x86-64) and can be forced
// with SIDCO_SIMD=avx2|neon|scalar — the differential suite
// (tests/test_simd_kernels.cpp) runs every kernel and codec loop under each
// available level and requires byte-identical encodes and bit-identical
// decodes/reductions, so the dispatch switch can never change numerics, only
// speed.  Naming a level the host cannot run (or an unknown name) is a loud
// CheckError, not a silent fallback: a CI cell that asks for the scalar path
// must actually be testing the scalar path.
//
// Contract for implementations behind the switch: a non-scalar path must
// produce bit-identical results to the scalar reference at every input size,
// including lane-count tails and kKernelBlock boundaries.  Reductions keep
// the scalar code's fixed four-accumulator-lane structure and combine lanes
// in the same order; selection keeps the branchless staged-emission
// semantics.  See README "Performance".
#pragma once

#include <vector>

namespace sidco::util::simd {

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Human-readable level name ("scalar" | "avx2" | "neon").
const char* name(Level level);

/// Levels the host can execute, best first (always ends with kScalar).
std::vector<Level> available();

/// The active dispatch level.  First call detects the host (and applies the
/// SIDCO_SIMD override); later calls are a relaxed atomic load, cheap enough
/// for per-block dispatch on kernel hot paths.
Level active();

/// Forces the dispatch level (testing hook used by the differential suite
/// and the scalar-vs-simd benches).  Throws util::CheckError when `level` is
/// not available on this host.
void set_active(Level level);

}  // namespace sidco::util::simd
