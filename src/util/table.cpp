#include "util/table.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace sidco::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "table header must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    check_fail("row arity must match header arity (" +
               std::to_string(header_.size()) + " columns)");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) {
    check_fail("cannot open CSV output file: " + path);
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::optional<std::string> Table::maybe_write_csv(const std::string& name) const {
  const char* dir = std::getenv("SIDCO_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  std::filesystem::create_directories(dir);
  std::string path = std::string(dir) + "/" + name + ".csv";
  write_csv(path);
  return path;
}

std::string format_double(double value, int digits) {
  std::ostringstream ss;
  ss << std::setprecision(digits) << value;
  return ss.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(unit == 0 ? 0 : 1) << bytes << ' '
     << kUnits[unit];
  return ss.str();
}

std::string format_speedup(double x) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(x < 10 ? 2 : 1) << x << 'x';
  return ss.str();
}

}  // namespace sidco::util
