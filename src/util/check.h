// Lightweight precondition / invariant checking.
//
// Following the Core Guidelines (I.6, E.12) we express contract violations as
// exceptions carrying a readable message.  These checks are cheap enough to be
// left on in release builds; hot loops use SIDCO_DCHECK which compiles away in
// NDEBUG builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace sidco::util {

/// Thrown when a precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Throws CheckError when `condition` is false.  `what` should describe the
/// violated expectation, e.g. "ratio must be in (0, 1]".  Takes a C string so
/// the passing path costs one branch and zero allocations — checks sit on
/// per-iteration compression hot paths (see the steady-state allocation
/// contract in compressors/compressor.h).
inline void check(bool condition, const char* what,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": check failed: " + what);
  }
}

/// Unconditional failure with a dynamically built message.  For cold-path
/// call sites whose message needs formatting: the caller branches first, so
/// the hot path never constructs the std::string.
[[noreturn]] inline void check_fail(
    const std::string& what,
    std::source_location loc = std::source_location::current()) {
  throw CheckError(std::string(loc.file_name()) + ":" +
                   std::to_string(loc.line()) + ": check failed: " + what);
}

}  // namespace sidco::util

#ifdef NDEBUG
#define SIDCO_DCHECK(cond, what) (static_cast<void>(0))
#else
#define SIDCO_DCHECK(cond, what) ::sidco::util::check((cond), (what))
#endif
