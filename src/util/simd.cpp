#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

namespace sidco::util::simd {

namespace {

/// Best level the hardware supports (ignoring any override).
Level detect() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#elif defined(__aarch64__)
  return Level::kNeon;  // NEON is architecturally mandatory on aarch64
#else
  return Level::kScalar;
#endif
}

bool is_available(Level level) {
  if (level == Level::kScalar) return true;
  return level == detect();
}

Level parse_env(const char* value) {
  if (std::strcmp(value, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(value, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(value, "neon") == 0) return Level::kNeon;
  check_fail(std::string("SIDCO_SIMD: unknown level '") + value +
             "' (expected avx2|neon|scalar)");
}

/// -1 until the first active() call resolves detection + env override.
std::atomic<int> g_active{-1};

Level resolve() {
  Level level = detect();
  const char* env = std::getenv("SIDCO_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const Level forced = parse_env(env);
    check(is_available(forced),
          "SIDCO_SIMD names a level this host cannot execute");
    level = forced;
  }
  return level;
}

}  // namespace

const char* name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<Level> available() {
  std::vector<Level> levels;
  const Level best = detect();
  if (best != Level::kScalar) levels.push_back(best);
  levels.push_back(Level::kScalar);
  return levels;
}

Level active() {
  int level = g_active.load(std::memory_order_relaxed);
  if (level < 0) [[unlikely]] {
    const Level resolved = resolve();
    // Several threads may race the first resolution; they all compute the
    // same value, so a plain store is fine.
    g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<Level>(level);
}

void set_active(Level level) {
  check(is_available(level),
        "simd::set_active: level not available on this host");
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace sidco::util::simd
