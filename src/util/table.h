// Console table and CSV emission.
//
// Every bench binary prints the paper's rows as an aligned ASCII table; when
// the environment variable SIDCO_BENCH_CSV_DIR is set, the same rows are also
// written as CSV for plotting.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace sidco::util {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment, `| a | b |` style.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Writes header + rows as CSV to `path`.
  void write_csv(const std::string& path) const;

  /// If SIDCO_BENCH_CSV_DIR is set, writes `<dir>/<name>.csv` and returns the
  /// path; otherwise does nothing.
  std::optional<std::string> maybe_write_csv(const std::string& name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` significant digits (bench-friendly widths).
std::string format_double(double value, int digits = 4);

/// Formats e.g. 1536 -> "1.5 KB", 26000000 -> "24.8 MB".
std::string format_bytes(double bytes);

/// Formats a ratio as a multiplier, e.g. 41.66 -> "41.7x".
std::string format_speedup(double x);

}  // namespace sidco::util
