// Internal thread pool for the blocked data-parallel kernels in src/tensor.
//
// Design constraints (and why this is not a generic executor):
//  - Work is always a fixed index range [0, tasks) of equally shaped blocks;
//    the pool hands out block indices through an atomic counter, so there is
//    no per-task allocation and no queue.
//  - Results must be bit-identical at any thread count.  The pool therefore
//    never reduces anything itself: callers store per-block partials into
//    pre-sized slots and combine them serially in block order.
//  - The calling thread participates in the work, so thread count 1 means
//    "run inline with zero synchronization" and the pool is safe to use from
//    binaries that never spawn a worker.
//
// The worker count defaults to the SIDCO_THREADS environment variable
// (clamped to [1, 64]), falling back to std::thread::hardware_concurrency().
// set_threads() re-provisions the pool at runtime for tests and benches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sidco::util {

class ThreadPool {
 public:
  /// Process-wide pool shared by all tensor kernels.
  static ThreadPool& instance();

  /// Reads SIDCO_THREADS (fallback: hardware_concurrency), clamped to
  /// [1, kMaxThreads].
  static int env_thread_count();

  explicit ThreadPool(int thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width including the calling thread (always >= 1).
  [[nodiscard]] int threads() const { return thread_count_; }

  /// Joins existing workers and re-provisions the pool with `thread_count`
  /// threads (clamped to [1, kMaxThreads]).  Not safe concurrently with
  /// run(); intended for startup, tests and benches.
  void set_threads(int thread_count);

  /// Invokes body(i) for every i in [0, tasks), distributing indices across
  /// the workers plus the calling thread, and blocks until all complete.
  /// Exceptions thrown by `body` are captured and the first one is rethrown
  /// on the calling thread.  Concurrent run() calls from different caller
  /// threads serialize; run() from inside a pool worker executes inline.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& body);

  /// True when run() on this thread would execute inline — inside a pool
  /// worker, a running job, or a SerialScope.  Kernels use this to pick
  /// their serial single-pass algorithms instead of multi-pass schemes that
  /// only pay off with real parallel execution.
  static bool executing_inline();

  /// While alive, every run() issued from the constructing thread executes
  /// inline (no pool dispatch, no run_mutex_ contention).  Use around timed
  /// regions that must measure single-device work — e.g. a simulated
  /// worker's compression latency — when several caller threads would
  /// otherwise serialize on the shared pool.
  class SerialScope {
   public:
    SerialScope();
    ~SerialScope();
    SerialScope(const SerialScope&) = delete;
    SerialScope& operator=(const SerialScope&) = delete;

   private:
    bool previous_;
  };

  static constexpr int kMaxThreads = 64;

 private:
  void worker_loop();
  void spawn_workers();
  void join_workers();

  int thread_count_;
  std::vector<std::thread> workers_;

  // One job at a time; callers serialize on run_mutex_.
  std::mutex run_mutex_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for remaining_ == 0
  std::uint64_t generation_ = 0;
  bool shutting_down_ = false;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t total_tasks_ = 0;
  std::size_t next_task_ = 0;      // guarded by job_mutex_
  std::size_t remaining_ = 0;      // guarded by job_mutex_
  std::exception_ptr first_error_;
};

}  // namespace sidco::util
