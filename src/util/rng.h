// Deterministic pseudo-random number generation.
//
// All stochastic components in the library draw from Rng, a xoshiro256**
// engine seeded through splitmix64.  Rng satisfies UniformRandomBitGenerator,
// so it composes with <random> distributions, and it supports cheap stream
// splitting (`fork`) so each simulated worker owns an independent,
// reproducible stream regardless of scheduling order.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sidco::util {

/// splitmix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream; deterministic in (parent state,
  /// `stream_id`).  The parent's state is not advanced, so fork order does not
  /// perturb the parent's own sequence.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift with rejection for unbiased bounded integers.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = -n % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (cached second variate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace sidco::util
