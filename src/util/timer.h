// Monotonic stopwatch used for measuring real compression latency.
#pragma once

#include <chrono>

namespace sidco::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sidco::util
