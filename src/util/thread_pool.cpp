#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace sidco::util {

namespace {
// Set while a pool worker (or a caller inside run()) executes job bodies, so
// nested kernel calls degrade to inline execution instead of deadlocking.
thread_local bool t_inside_pool_job = false;
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_thread_count());
  return pool;
}

bool ThreadPool::executing_inline() { return t_inside_pool_job; }

ThreadPool::SerialScope::SerialScope() : previous_(t_inside_pool_job) {
  t_inside_pool_job = true;
}

ThreadPool::SerialScope::~SerialScope() { t_inside_pool_job = previous_; }

int ThreadPool::env_thread_count() {
  if (const char* env = std::getenv("SIDCO_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env) {
      // Non-positive values (SIDCO_THREADS=0 is a common "disable" idiom)
      // mean serial execution, not "fall back to all cores".
      return static_cast<int>(std::clamp<long>(parsed, 1, kMaxThreads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, kMaxThreads);
}

ThreadPool::ThreadPool(int thread_count)
    : thread_count_(std::clamp(thread_count, 1, kMaxThreads)) {
  spawn_workers();
}

ThreadPool::~ThreadPool() { join_workers(); }

void ThreadPool::set_threads(int thread_count) {
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  join_workers();
  thread_count_ = std::clamp(thread_count, 1, kMaxThreads);
  spawn_workers();
}

void ThreadPool::spawn_workers() {
  shutting_down_ = false;
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int t = 1; t < thread_count_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::join_workers() {
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    shutting_down_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& body) {
  if (tasks == 0) return;
  if (thread_count_ <= 1 || tasks == 1 || t_inside_pool_job ||
      workers_.empty()) {
    // Save/restore rather than set/clear: on a pool worker the flag is
    // already true for the thread's lifetime and must stay that way after a
    // nested inline run, or a later nested call would deadlock on run_mutex_.
    const bool was_inside = t_inside_pool_job;
    t_inside_pool_job = true;
    try {
      for (std::size_t i = 0; i < tasks; ++i) body(i);
    } catch (...) {
      t_inside_pool_job = was_inside;
      throw;
    }
    t_inside_pool_job = was_inside;
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    job_ = &body;
    total_tasks_ = tasks;
    next_task_ = 0;
    remaining_ = tasks;
    first_error_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();

  // The caller is execution lane 0: it drains tasks alongside the workers.
  t_inside_pool_job = true;
  for (;;) {
    std::size_t index = 0;
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (next_task_ >= total_tasks_) break;
      index = next_task_++;
    }
    try {
      (*job_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(job_mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
  t_inside_pool_job = false;

  std::unique_lock<std::mutex> lock(job_mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  t_inside_pool_job = true;
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      job_cv_.wait(lock, [&] {
        return shutting_down_ ||
               (generation_ != seen_generation && job_ != nullptr &&
                next_task_ < total_tasks_);
      });
      if (shutting_down_) return;
      seen_generation = generation_;
    }
    for (;;) {
      std::size_t index = 0;
      const std::function<void(std::size_t)>* job = nullptr;
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (job_ == nullptr || next_task_ >= total_tasks_) break;
        index = next_task_++;
        job = job_;
      }
      try {
        (*job)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sidco::util
