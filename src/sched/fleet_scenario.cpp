#include "sched/fleet_scenario.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace sidco::sched {

FleetConfig fleet_config_from_cell(const dist::Scenario& cell) {
  if (!cell.fleet.has_value()) {
    util::check_fail("cell '" + cell.name +
                     "' has no fleet parameters (plain cells run through "
                     "dist::run_scenario)");
  }
  const dist::FleetCell& fleet = *cell.fleet;
  util::check(fleet.weights.size() == fleet.tenants,
              "fleet cell weights must be resolved per tenant");
  FleetConfig config;
  config.tenants.reserve(fleet.tenants);
  for (std::size_t t = 0; t < fleet.tenants; ++t) {
    TenantSpec tenant;
    tenant.session = cell.config;
    // Deterministic event timeline, as dist::run_scenario forces for plain
    // cells.
    tenant.session.device = dist::Device::kGpuModel;
    tenant.session.seed = cell.config.seed + t;
    tenant.weight = fleet.weights[t];
    tenant.churn = fleet.churn;
    config.tenants.push_back(std::move(tenant));
  }
  config.link_gbps = cell.config.network.bandwidth_gbps;
  config.trace = fleet.trace;
  config.handoff = fleet.handoff;
  return config;
}

std::vector<std::string> cell_metric_names(const dist::Scenario& cell) {
  if (!cell.fleet.has_value()) return {cell.name};
  std::vector<std::string> names;
  names.reserve(cell.fleet->tenants);
  for (std::size_t t = 0; t < cell.fleet->tenants; ++t) {
    names.push_back(cell.name + "/t" + std::to_string(t));
  }
  return names;
}

std::vector<dist::ScenarioMetrics> run_cell(const dist::Scenario& cell) {
  if (!cell.fleet.has_value()) return {dist::run_scenario(cell)};
  const FleetResult fleet = run_fleet(fleet_config_from_cell(cell));
  std::vector<dist::ScenarioMetrics> out;
  out.reserve(fleet.tenants.size());
  const std::vector<std::string> names = cell_metric_names(cell);
  for (std::size_t t = 0; t < fleet.tenants.size(); ++t) {
    dist::ScenarioMetrics metrics =
        dist::metrics_from_session(names[t], fleet.tenants[t].session);
    // The cell-level fairness index rides on every tenant line so a golden
    // diff pins the allocation, not just each tenant's own numbers.
    metrics.jain = fleet.jain_fairness;
    out.push_back(std::move(metrics));
  }
  return out;
}

std::vector<dist::ScenarioMetrics> run_matrix(const dist::MatrixSpec& spec) {
  std::vector<dist::ScenarioMetrics> out;
  for (const dist::Scenario& cell : dist::expand(spec)) {
    for (dist::ScenarioMetrics& metrics : run_cell(cell)) {
      out.push_back(std::move(metrics));
    }
  }
  return out;
}

}  // namespace sidco::sched
