// Scenario-DSL front end of the multi-tenant scheduler: turns expanded fleet
// cells (dist::Scenario with FleetCell parameters) into FleetConfigs, runs
// them through run_fleet, and reports one golden line per tenant
// ("<cell>/t<k>", with the cell's Jain index repeated on every line).  Plain
// cells pass straight through dist::run_scenario, so sched::run_cell /
// sched::run_matrix are drop-in supersets the tools use for every matrix.
#pragma once

#include <string>
#include <vector>

#include "dist/scenario.h"
#include "sched/scheduler.h"

namespace sidco::sched {

/// Builds the FleetConfig of a fleet cell: tenant t runs the cell's
/// SessionConfig with seed `config.seed + t` (its own data/init streams) and
/// weight `fleet->weights[t]`; every tenant shares the cell's churn schedule,
/// and the link is the cell's network bandwidth modulated by the trace.
/// Throws util::CheckError when the cell has no fleet parameters.
FleetConfig fleet_config_from_cell(const dist::Scenario& cell);

/// The golden-line names this cell will report, in order: `{cell.name}` for
/// a plain cell, `{cell.name}/t0 .. /t<N-1>` for a fleet cell.  What
/// `tools/run_scenarios --list` prints, byte-equal to the golden keys.
std::vector<std::string> cell_metric_names(const dist::Scenario& cell);

/// Runs one cell — dist::run_scenario for plain cells, run_fleet for fleet
/// cells — and returns its metric lines in cell_metric_names order.
std::vector<dist::ScenarioMetrics> run_cell(const dist::Scenario& cell);

/// Runs every cell of the matrix in expansion order (fleet cells included —
/// the superset of dist::run_matrix).
std::vector<dist::ScenarioMetrics> run_matrix(const dist::MatrixSpec& spec);

}  // namespace sidco::sched
