// Elastic multi-tenant session scheduler: N concurrent training sessions
// over one shared fair-share link, with worker churn mid-run.
//
// Each tenant replays the simulated allgather engine's numerics round by
// round — worker steps, encoded-payload aggregation at 1/n_active, lock-step
// apply — over the tenants' active worker sets, so a 1-tenant fleet with no
// churn reproduces run_session's parameters/losses/evals bit-for-bit.  What
// the fleet changes is *time*: communication drains through a shared link
// whose capacity follows a BandwidthTrace and is divided among concurrently
// draining tenants by weighted max-min fair share (fair_share.h), recomputed
// at every event epoch (a tenant starting/finishing a drain, or a trace
// segment boundary).  Worker kernels of every tenant share the one
// process-wide util::thread_pool; tenant rounds interleave deterministically
// on the event timeline.
//
// Elastic membership: a declarative ChurnSchedule adds/removes workers at
// round starts.  Leaves park the worker's error-feedback residual and are
// recorded as SessionResult evictions (the PR 7 eviction bookkeeping);
// joiners adopt the current replica state (parameters + optimizer momentum),
// pay a dense parameter pull on the wire, and start their residual per the
// ResidualHandoff policy — warm from the most recently parked residual, or
// zero.  Scheduling decisions are pure functions of event-sim time, so every
// fleet metric is deterministic and goldenable.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/network_model.h"
#include "dist/scenario.h"
#include "dist/session.h"

namespace sidco::sched {

/// One tenant: a full session config plus its share of the link.  The
/// session must be simulated-engine, allgather, overlap_chunks == 1,
/// homogeneous (no worker_time_scale), fault-free — run_fleet validates.
struct TenantSpec {
  dist::SessionConfig session;
  double weight = 1.0;  ///< fair-share weight on the shared link (> 0)
  dist::ChurnSchedule churn;
};

struct FleetConfig {
  std::vector<TenantSpec> tenants;
  /// Shared-link capacity in Gbps while `trace` is flat; per-tenant NIC
  /// ceilings still come from each tenant's own NetworkConfig.
  double link_gbps = 10.0;
  dist::BandwidthTrace trace;
  dist::ResidualHandoff handoff = dist::ResidualHandoff::kWarmStart;
};

struct TenantResult {
  dist::SessionResult session;
  /// Mean allocated link bandwidth while this tenant was draining bytes
  /// (total bytes drained / total drain seconds); 0 if it never used the
  /// link (e.g. a 1-worker tenant with no joins).  The Jain inputs.
  double mean_share_bytes_per_second = 0.0;
  double drain_seconds = 0.0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t rejoins = 0;
};

struct FleetResult {
  std::vector<TenantResult> tenants;
  /// Jain's index over the tenants' mean link shares, excluding tenants
  /// that never drained; 1.0 when fewer than two tenants used the link.
  double jain_fairness = 1.0;
  /// Completion time of the slowest tenant on the shared timeline.
  double makespan_seconds = 0.0;
};

/// Runs the fleet to completion.  Throws util::CheckError on configs the
/// scheduler cannot model (see TenantSpec) or infeasible churn schedules.
FleetResult run_fleet(const FleetConfig& config);

}  // namespace sidco::sched
