#include "sched/scheduler.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "comm/aggregate.h"
#include "dist/session_detail.h"
#include "dist/worker.h"
#include "nn/zoo.h"
#include "sched/fair_share.h"
#include "util/check.h"

namespace sidco::sched {
namespace {

namespace ddetail = dist::detail;

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Drain completion slop: alloc * (remaining / alloc) rounds in the last
/// ulp, so "drained" means below a microbyte, not exactly zero.
constexpr double kDrainEpsilonBytes = 1e-6;
/// Epoch budget: orders of magnitude above any sane fleet (rounds x tenants
/// x trace boundaries), so a pathological trace period fails loudly instead
/// of spinning.
constexpr std::size_t kMaxEpochs = 50'000'000;

enum class Phase { kComputing, kDraining, kDone };

/// One tenant's live state on the shared timeline.  The numeric round
/// (steps, aggregation, apply, eval) happens atomically at round start —
/// numerics are time-independent under lock-step allgather — and the phases
/// then advance simulated time: compute+latency-setup until phase_deadline,
/// then a byte drain through the fair-share link.
struct TenantState {
  explicit TenantState(const TenantSpec& spec_in,
                       dist::ResidualHandoff handoff_in)
      : spec(spec_in),
        bench(nn::benchmark_spec(spec_in.session.benchmark)),
        handoff(handoff_in),
        workers(ddetail::make_workers(spec_in.session)),
        dim(workers.front()->gradient_dimension()),
        timing(ddetail::make_timing(spec_in.session, dim)),
        active(workers.size(), 1) {
    result.session.config = spec.session;
    result.session.gradient_dimension = dim;
  }

  const TenantSpec& spec;
  const nn::BenchmarkSpec& bench;
  dist::ResidualHandoff handoff;

  std::vector<std::unique_ptr<dist::Worker>> workers;  ///< by worker id
  std::size_t dim;
  ddetail::TimingContext timing;
  std::vector<char> active;           ///< by worker id
  std::vector<std::size_t> departed;  ///< parked ids, most recent last
  std::size_t next_churn = 0;

  Phase phase = Phase::kComputing;
  std::size_t round = 0;
  double round_start = 0.0;
  double compute_end = 0.0;     ///< communication officially starts here
  double phase_deadline = 0.0;  ///< kComputing: compute + latency-setup end
  double demand_bytes = 0.0;
  double remaining_bytes = 0.0;
  /// Joiners' dense parameter pulls, folded into the next round's drain.
  double pending_pull_bytes = 0.0;

  double drained_bytes = 0.0;
  double drain_time = 0.0;
  std::size_t applied_gradients = 0;

  comm::SparseAccumulator accumulator;
  std::vector<dist::WorkerStepResult> steps;
  std::vector<ddetail::StepScalars> scalars;
  std::vector<double> produce;
  std::vector<float> zero_scratch;
  dist::IterationRecord pending_record;

  TenantResult result;
};

std::vector<std::size_t> active_ids(const TenantState& t) {
  std::vector<std::size_t> ids;
  for (std::size_t id = 0; id < t.active.size(); ++id) {
    if (t.active[id]) ids.push_back(id);
  }
  return ids;
}

/// Statically replays the churn schedule so an infeasible one fails before
/// any tenant steps (mirrors the scenario parser's check — run_fleet is also
/// a direct API).
void validate_churn(const dist::ChurnSchedule& churn, std::size_t workers,
                    std::size_t iterations) {
  std::size_t active = workers;
  std::size_t departed = 0;
  for (const dist::ChurnEvent& event : churn.events) {
    if (event.round >= iterations) {
      util::check_fail("churn schedule '" + churn.name +
                       "' has an event beyond the last round");
    }
    switch (event.kind) {
      case dist::ChurnEvent::Kind::kLeave:
        util::check(active >= 2, "churn would empty a tenant");
        --active;
        ++departed;
        break;
      case dist::ChurnEvent::Kind::kJoin:
        ++active;
        break;
      case dist::ChurnEvent::Kind::kRejoin:
        util::check(departed >= 1, "rejoin without a departed worker");
        --departed;
        ++active;
        break;
    }
  }
}

void validate_tenant(const TenantSpec& tenant) {
  const dist::SessionConfig& c = tenant.session;
  ddetail::validate_config(c);
  util::check(c.engine == dist::Engine::kSimulated,
              "fleet tenants require the simulated engine");
  util::check(c.topology == dist::Topology::kAllreduce,
              "fleet tenants require the allgather topology");
  util::check(c.overlap_chunks == 1,
              "fleet tenants require overlap_chunks == 1");
  util::check(c.worker_time_scale.empty(),
              "fleet tenants require homogeneous workers");
  util::check(!c.fault.any(),
              "fleet tenants cannot inject transport faults");
  util::check(!c.parallel_workers,
              "fleet tenants step workers on the scheduler thread");
  util::check(tenant.weight > 0.0, "tenant weight must be positive");
  validate_churn(tenant.churn, c.workers, c.iterations);
}

/// Applies every churn event scheduled for the tenant's current round.
void apply_churn(TenantState& t) {
  const auto& events = t.spec.churn.events;
  while (t.next_churn < events.size() &&
         events[t.next_churn].round == t.round) {
    const dist::ChurnEvent& event = events[t.next_churn];
    ++t.next_churn;
    if (event.kind == dist::ChurnEvent::Kind::kLeave) {
      // The highest-index active worker departs; its residual stays parked
      // inside the worker object for a later warm handoff.
      std::size_t id = t.active.size();
      for (std::size_t i = t.active.size(); i-- > 0;) {
        if (t.active[i]) {
          id = i;
          break;
        }
      }
      util::check(id < t.active.size(), "leave with no active worker");
      t.active[id] = 0;
      t.departed.push_back(id);
      t.result.session.evictions.push_back(
          {.worker = id, .round = t.round});
      ++t.result.leaves;
      continue;
    }
    // kJoin / kRejoin: the joiner adopts the current replica state from the
    // lowest-index active worker (any would do — replicas are identical).
    const std::vector<std::size_t> ids = active_ids(t);
    util::check(!ids.empty(), "join into an empty tenant");
    const std::size_t source = ids.front();
    std::size_t id = 0;
    if (event.kind == dist::ChurnEvent::Kind::kJoin) {
      id = t.workers.size();
      t.workers.push_back(ddetail::make_worker(t.spec.session, id));
      t.active.push_back(1);
      ++t.result.joins;
    } else {
      util::check(!t.departed.empty(), "rejoin without a departed worker");
      id = t.departed.back();
      t.departed.pop_back();
      t.active[id] = 1;
      ++t.result.rejoins;
    }
    dist::Worker& joiner = *t.workers[id];
    joiner.adopt_replica_state(*t.workers[source]);
    if (t.spec.session.error_feedback) {
      if (t.handoff == dist::ResidualHandoff::kZeroInit) {
        t.zero_scratch.assign(t.dim, 0.0F);
        joiner.overwrite_error_memory(t.zero_scratch);
      } else if (event.kind == dist::ChurnEvent::Kind::kJoin &&
                 !t.departed.empty()) {
        // Warm start: inherit the most recently parked residual.  A
        // rejoining worker already holds its own parked residual; a fresh
        // join with nothing parked starts from the zeros it was built with.
        joiner.overwrite_error_memory(
            t.workers[t.departed.back()]->error_memory());
      }
    }
    // Adopting the replica is a real dense parameter pull over the shared
    // link: charged at ratio 1 and drained with the next round's traffic.
    const std::size_t pull = dist::NetworkModel::dense_bytes(t.dim);
    t.result.session.total_wire_bytes += pull;
    t.result.session.total_dense_equiv_bytes += pull;
    t.pending_pull_bytes += static_cast<double>(
        ddetail::payload_timing_bytes(pull, t.dim, t.timing.timing_dim));
  }
}

/// Runs the numeric round (identical call order to run_allreduce: steps in
/// worker order, encoded aggregation at 1/n_active, lock-step apply, eval on
/// the lowest active worker) and schedules its timing phases.
void start_round(TenantState& t, double now) {
  t.round_start = now;
  apply_churn(t);
  const std::vector<std::size_t> ids = active_ids(t);
  const std::size_t n = ids.size();
  util::check(n >= 1, "tenant round with no active workers");
  t.steps.resize(n);
  t.scalars.resize(n);
  t.produce.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    t.steps[k] = t.workers[ids[k]]->step(t.bench.batch_size);
  }
  t.accumulator.reset(t.dim);
  const auto agg_scale = static_cast<float>(1.0 / static_cast<double>(n));
  for (const dist::WorkerStepResult& s : t.steps) {
    t.accumulator.accumulate_encoded(s.encoded, agg_scale);
  }
  for (std::size_t id : ids) {
    t.workers[id]->apply_update(t.accumulator.dense());
  }
  for (std::size_t k = 0; k < n; ++k) {
    t.scalars[k] = {.nnz = t.steps[k].sparse.nnz(),
                    .wire_bytes = t.steps[k].wire_bytes,
                    .train_loss = t.steps[k].train_loss,
                    .train_accuracy = t.steps[k].train_accuracy,
                    .measured_compression =
                        t.steps[k].measured_compression_seconds,
                    .stages_used = t.steps[k].stages_used};
  }
  // The record's metric fields (losses, ratio, wire bytes) are exactly the
  // standalone engine's; its timeline fields are overwritten at round end
  // with the shared-link schedule.
  t.pending_record = ddetail::collective_iteration_record(
      t.spec.session, t.timing, t.scalars, t.produce);
  t.result.session.total_wire_bytes += t.pending_record.wire_bytes;
  if (n > 1) {
    t.result.session.total_dense_equiv_bytes +=
        n * dist::NetworkModel::dense_bytes(t.dim);
  }
  t.applied_gradients += n;

  const std::size_t iter = t.round;
  const bool last = iter + 1 == t.spec.session.iterations;
  const bool scheduled = t.spec.session.eval_every > 0 &&
                         (iter + 1) % t.spec.session.eval_every == 0;
  if (scheduled || last) {
    const std::size_t eval_batch =
        std::max<std::size_t>(t.bench.batch_size, 1);
    const nn::LossResult eval =
        t.workers[ids.front()]->evaluate(eval_batch,
                                         t.spec.session.eval_batches);
    t.result.session.evals.push_back(
        {.iteration = iter + 1,
         .loss = eval.loss,
         .accuracy = eval.accuracy,
         .quality = dist::benchmark_quality(t.spec.session.benchmark,
                                            eval.loss, eval.accuracy)
                        .value});
  }

  double compute_seconds = 0.0;
  for (double p : t.produce) compute_seconds = std::max(compute_seconds, p);
  t.compute_end = now + compute_seconds;
  double demand = t.pending_pull_bytes;
  t.pending_pull_bytes = 0.0;
  if (n > 1) {
    const std::size_t bytes =
        ddetail::mean_push_timing_bytes(t.scalars, t.dim, t.timing.timing_dim);
    // Same arithmetic shape as sparse_allgather_seconds' byte term: each
    // worker receives the other n-1 payloads.
    demand += (static_cast<double>(n) - 1.0) * static_cast<double>(bytes);
  }
  t.demand_bytes = demand;
  double setup = 0.0;
  if (demand > 0.0) {
    const double hops = n > 1 ? static_cast<double>(n) - 1.0 : 1.0;
    setup = hops * t.spec.session.network.latency_us * 1e-6;
  }
  t.phase = Phase::kComputing;
  t.phase_deadline = t.compute_end + setup;
}

/// Closes the round's timeline (communication = latency setup + fair-share
/// drain) and either starts the next round or retires the tenant.
void finish_round(TenantState& t, double now) {
  t.pending_record.communication_seconds = now - t.compute_end;
  t.pending_record.modeled_wall_seconds = now - t.round_start;
  t.result.session.iterations.push_back(t.pending_record);
  t.result.session.total_modeled_seconds = now;
  ++t.round;
  if (t.round == t.spec.session.iterations) {
    t.phase = Phase::kDone;
  } else {
    start_round(t, now);
  }
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  util::check(!config.tenants.empty(), "a fleet needs at least one tenant");
  util::check(config.link_gbps > 0.0, "shared-link gbps must be positive");
  for (const TenantSpec& tenant : config.tenants) validate_tenant(tenant);

  std::vector<std::unique_ptr<TenantState>> tenants;
  tenants.reserve(config.tenants.size());
  for (const TenantSpec& tenant : config.tenants) {
    tenants.push_back(std::make_unique<TenantState>(tenant, config.handoff));
  }
  double now = 0.0;
  for (auto& t : tenants) start_round(*t, now);

  std::vector<LinkDemand> demands(tenants.size());
  std::vector<double> alloc;
  const auto all_done = [&] {
    for (const auto& t : tenants) {
      if (t->phase != Phase::kDone) return false;
    }
    return true;
  };

  for (std::size_t epoch = 0; !all_done(); ++epoch) {
    util::check(epoch < kMaxEpochs,
                "fleet scheduler exceeded its epoch budget (bandwidth-trace "
                "period far below the round timescale?)");
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantState& t = *tenants[i];
      demands[i] = {
          .weight = t.spec.weight,
          .cap_bytes_per_second = t.timing.network.link_bytes_per_second(),
          .active = t.phase == Phase::kDraining};
    }
    const double capacity =
        config.trace.bytes_per_second_at(now, config.link_gbps);
    alloc = weighted_max_min(capacity, demands);

    // Next event: a compute/setup deadline, a drain completion at the
    // current allocation, or a trace boundary (which re-divides the link —
    // only relevant while someone is draining).
    double next = kInf;
    bool any_draining = false;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantState& t = *tenants[i];
      if (t.phase == Phase::kComputing) {
        next = std::min(next, t.phase_deadline);
      } else if (t.phase == Phase::kDraining) {
        any_draining = true;
        if (alloc[i] > 0.0) {
          next = std::min(next, now + t.remaining_bytes / alloc[i]);
        }
      }
    }
    if (any_draining && !config.trace.flat()) {
      next = std::min(next, config.trace.next_boundary_after(now));
    }
    util::check(next < kInf, "fleet scheduler stalled with no next event");

    const double dt = next - now;
    if (dt > 0.0) {
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        TenantState& t = *tenants[i];
        if (t.phase != Phase::kDraining) continue;
        const double drained = alloc[i] * dt;
        t.remaining_bytes -= drained;
        t.drained_bytes += drained;
        t.drain_time += dt;
      }
    }
    now = next;

    for (auto& tp : tenants) {
      TenantState& t = *tp;
      if (t.phase == Phase::kComputing && t.phase_deadline <= now) {
        if (t.demand_bytes > 0.0) {
          t.phase = Phase::kDraining;
          t.remaining_bytes = t.demand_bytes;
        } else {
          finish_round(t, now);
        }
      } else if (t.phase == Phase::kDraining &&
                 t.remaining_bytes <= kDrainEpsilonBytes) {
        finish_round(t, now);
      }
    }
  }

  FleetResult fleet;
  fleet.tenants.reserve(tenants.size());
  std::vector<double> shares;
  for (auto& tp : tenants) {
    TenantState& t = *tp;
    const std::vector<std::size_t> ids = active_ids(t);
    const std::span<const float> params = t.workers[ids.front()]->parameters();
    t.result.session.final_parameters.assign(params.begin(), params.end());
    t.result.session.staleness_histogram.assign(1, t.applied_gradients);
    ddetail::finalize_result(t.result.session);
    t.result.drain_seconds = t.drain_time;
    t.result.mean_share_bytes_per_second =
        t.drain_time > 0.0 ? t.drained_bytes / t.drain_time : 0.0;
    if (t.drain_time > 0.0) {
      shares.push_back(t.result.mean_share_bytes_per_second);
    }
    fleet.makespan_seconds =
        std::max(fleet.makespan_seconds, t.result.session.total_modeled_seconds);
    fleet.tenants.push_back(std::move(t.result));
  }
  fleet.jain_fairness = shares.size() >= 2 ? jain_index(shares) : 1.0;
  return fleet;
}

}  // namespace sidco::sched
