// Weighted max-min fair-share allocation of one link, and Jain's fairness
// index over the resulting shares.
//
// The fleet scheduler (scheduler.h) recomputes the allocation at every
// event-sim epoch: tenants currently draining bytes split the link's
// instantaneous capacity by water-filling — each unsaturated tenant gets
// capacity in proportion to its weight, tenants capped by their own NIC
// ceiling saturate at the cap, and the leftover re-waterfalls over the rest.
// Both functions are pure, so allocations (and everything downstream: round
// timelines, golden metrics) are deterministic functions of their inputs.
#pragma once

#include <span>
#include <vector>

namespace sidco::sched {

/// One tenant's demand on the shared link at an allocation epoch.
struct LinkDemand {
  double weight = 1.0;                 ///< fair-share weight (> 0)
  double cap_bytes_per_second = 0.0;   ///< tenant NIC ceiling (> 0 to count)
  bool active = false;                 ///< currently draining bytes
};

/// Weighted max-min (water-filling) allocation of `capacity_bytes_per_second`
/// across the active demands.  Returns one allocation per entry, 0 for
/// inactive tenants.  Properties (unit-tested): no allocation exceeds its
/// cap, the full capacity is handed out whenever aggregate demand can absorb
/// it, and unsaturated tenants' shares are proportional to their weights.
std::vector<double> weighted_max_min(double capacity_bytes_per_second,
                                     std::span<const LinkDemand> demands);

/// Jain's fairness index J = (sum x)^2 / (n * sum x^2) over the given
/// shares: 1 when all equal, 1/n when one tenant holds everything.  Defined
/// as 1 for empty or all-zero inputs (nobody used the link: trivially fair).
double jain_index(std::span<const double> shares);

}  // namespace sidco::sched
