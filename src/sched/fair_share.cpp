#include "sched/fair_share.h"

#include <cstddef>

#include "util/check.h"

namespace sidco::sched {

std::vector<double> weighted_max_min(double capacity_bytes_per_second,
                                     std::span<const LinkDemand> demands) {
  util::check(capacity_bytes_per_second >= 0.0,
              "link capacity must be non-negative");
  std::vector<double> alloc(demands.size(), 0.0);
  std::vector<std::size_t> unsaturated;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const LinkDemand& d = demands[i];
    if (!d.active || d.cap_bytes_per_second <= 0.0) continue;
    util::check(d.weight > 0.0, "fair-share weights must be positive");
    unsaturated.push_back(i);
  }
  double remaining = capacity_bytes_per_second;
  // Water-filling: hand every capped tenant its cap, re-divide the leftover
  // over the rest by weight; at most n rounds since each saturates >= 1.
  while (!unsaturated.empty() && remaining > 0.0) {
    double weight_sum = 0.0;
    for (std::size_t i : unsaturated) weight_sum += demands[i].weight;
    const double per_weight = remaining / weight_sum;
    std::vector<std::size_t> next;
    bool saturated_any = false;
    for (std::size_t i : unsaturated) {
      const double fair = per_weight * demands[i].weight;
      if (fair >= demands[i].cap_bytes_per_second) {
        alloc[i] = demands[i].cap_bytes_per_second;
        remaining -= alloc[i];
        saturated_any = true;
      } else {
        next.push_back(i);
      }
    }
    if (!saturated_any) {
      for (std::size_t i : next) alloc[i] = per_weight * demands[i].weight;
      break;
    }
    unsaturated = std::move(next);
  }
  return alloc;
}

double jain_index(std::span<const double> shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    util::check(x >= 0.0, "shares must be non-negative");
    sum += x;
    sum_sq += x * x;
  }
  if (shares.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

}  // namespace sidco::sched
