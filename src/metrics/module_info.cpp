// Module identity symbol; keeps the static library non-empty on all toolchains.
namespace sidco::metrics { const char* module_name() { return "sidco_metrics"; } }
