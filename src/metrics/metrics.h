// Paper metrics (§4.1):
//  - Normalized Training Speed-up: quality at iteration T divided by time to
//    complete T iterations, normalized by the no-compression baseline.
//  - Normalized Average Training Throughput: samples/s over baseline's.
//  - Estimation Quality: mean achieved/target ratio with 90% CI error bars.
#pragma once

#include <string>
#include <vector>

#include "dist/session.h"
#include "stats/descriptive.h"

namespace sidco::metrics {

struct EstimationQuality {
  double mean_normalized_ratio = 0.0;  ///< mean of (k-hat/d) / delta
  double ci_lower = 0.0;               ///< 90% CI
  double ci_upper = 0.0;
};

/// Computes k-hat/k statistics over a session's iterations.  The first
/// `warmup_fraction` of iterations (capped at 30) is excluded: SIDCo starts
/// single-stage by design and the paper averages over runs long enough that
/// the Adapt_Stages start-up transient is negligible; our sessions are short,
/// so the transient is removed explicitly (it is still visible in the Fig. 4
/// and Fig. 9 time-series benches).
EstimationQuality estimation_quality(const dist::SessionResult& session,
                                     double warmup_fraction = 0.25);

/// Training speed-up of `session` relative to `baseline` (quality-per-time
/// ratio, the paper's normalized training speed-up).  Returns 0 when the
/// session failed to reach `quality_floor` of the baseline's quality —
/// mirroring the zero-speedup bars for diverged runs in Figs. 3/5.
double normalized_speedup(const dist::SessionResult& session,
                          const dist::SessionResult& baseline,
                          double quality_floor = 0.5);

/// Throughput (samples/s) over the baseline's.
double normalized_throughput(const dist::SessionResult& session,
                             const dist::SessionResult& baseline);

/// Modeled seconds until the session first reaches `target_quality`
/// (direction-aware); returns a negative value when never reached.
double time_to_quality(const dist::SessionResult& session,
                       double target_quality);

/// Downsamples `series` to at most `points` evenly spaced entries (console
/// rendering of the paper's line plots).
std::vector<std::pair<std::size_t, double>> downsample(
    const std::vector<double>& series, std::size_t points);

}  // namespace sidco::metrics
