#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sidco::metrics {

EstimationQuality estimation_quality(const dist::SessionResult& session,
                                     double warmup_fraction) {
  util::check(!session.iterations.empty(), "session has no iterations");
  util::check(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  const std::size_t skip = std::min<std::size_t>(
      static_cast<std::size_t>(warmup_fraction *
                               static_cast<double>(session.iterations.size())),
      30);
  std::vector<double> normalized;
  normalized.reserve(session.iterations.size() - skip);
  for (std::size_t i = skip; i < session.iterations.size(); ++i) {
    normalized.push_back(session.iterations[i].achieved_ratio /
                         session.config.target_ratio);
  }
  const stats::ConfidenceInterval ci =
      stats::mean_confidence_interval(normalized, 0.90);
  return {.mean_normalized_ratio = ci.mean,
          .ci_lower = ci.lower,
          .ci_upper = ci.upper};
}

namespace {
double quality_score(const dist::SessionResult& s) {
  return s.quality_higher_is_better ? s.final_quality
                                    : 1.0 / std::max(s.final_quality, 1e-9);
}
}  // namespace

double normalized_speedup(const dist::SessionResult& session,
                          const dist::SessionResult& baseline,
                          double quality_floor) {
  util::check(baseline.total_modeled_seconds > 0.0,
              "baseline must have nonzero time");
  const double base_score = quality_score(baseline);
  const double score = quality_score(session);
  // Diverged / non-converged runs score zero, as in the paper's figures.
  if (base_score > 0.0 && score < quality_floor * base_score) return 0.0;
  const double base = base_score / baseline.total_modeled_seconds;
  if (base <= 0.0) return 0.0;
  return (score / session.total_modeled_seconds) / base;
}

double normalized_throughput(const dist::SessionResult& session,
                             const dist::SessionResult& baseline) {
  const double base = baseline.throughput_samples_per_second();
  util::check(base > 0.0, "baseline throughput must be positive");
  return session.throughput_samples_per_second() / base;
}

double time_to_quality(const dist::SessionResult& session,
                       double target_quality) {
  // Walk evals in order, converting eval iteration to modeled elapsed time.
  double elapsed = 0.0;
  std::size_t next_iter = 0;
  for (const auto& eval : session.evals) {
    while (next_iter < eval.iteration &&
           next_iter < session.iterations.size()) {
      elapsed += session.iterations[next_iter].wall_seconds();
      ++next_iter;
    }
    const bool reached = session.quality_higher_is_better
                             ? eval.quality >= target_quality
                             : eval.quality <= target_quality;
    if (reached) return elapsed;
  }
  return -1.0;
}

std::vector<std::pair<std::size_t, double>> downsample(
    const std::vector<double>& series, std::size_t points) {
  util::check(points >= 2, "downsample needs >= 2 points");
  std::vector<std::pair<std::size_t, double>> out;
  if (series.empty()) return out;
  const std::size_t n = series.size();
  const std::size_t count = std::min(points, n);
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx =
        (n - 1) * i / (count - 1 == 0 ? 1 : count - 1);
    out.emplace_back(idx, series[idx]);
  }
  return out;
}

}  // namespace sidco::metrics
