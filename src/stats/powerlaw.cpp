#include "stats/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "tensor/vector_ops.h"
#include "util/check.h"

namespace sidco::stats {

PowerLawFit fit_power_law_decay(std::span<const float> gradient,
                                std::size_t head_skip,
                                std::size_t head_count) {
  util::check(gradient.size() >= 4, "power-law fit requires >= 4 elements");
  std::vector<double> mags;
  mags.reserve(gradient.size());
  for (float v : gradient) {
    const double a = std::fabs(static_cast<double>(v));
    if (a > 0.0) mags.push_back(a);
  }
  util::check(mags.size() >= 4, "power-law fit requires >= 4 non-zeros");
  std::sort(mags.begin(), mags.end(), std::greater<>());

  const std::size_t first = std::min(head_skip, mags.size() - 2);
  const std::size_t last = std::min(mags.size(), head_count);
  util::check(last > first + 1, "power-law fit window is empty");

  // Least squares of y = log(mag) on x = log(rank), rank is 1-based.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  std::size_t n = 0;
  for (std::size_t j = first; j < last; ++j) {
    const double x = std::log(static_cast<double>(j + 1));
    const double y = std::log(mags[j]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    ++n;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  PowerLawFit fit;
  fit.points = n;
  if (denom <= 0.0) return fit;
  const double slope = (dn * sxy - sx * sy) / denom;
  fit.exponent = -slope;
  fit.log_c1 = (sy - slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  const double ss_res = ss_tot - slope * (sxy - sx * sy / dn);
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : std::max(0.0, 1.0 - ss_res / ss_tot);
  return fit;
}

bool is_compressible(const PowerLawFit& fit) { return fit.exponent > 0.5; }

std::vector<SparsificationErrorPoint> sparsification_error_curve(
    std::span<const float> gradient, std::size_t points) {
  util::check(points >= 2, "curve requires >= 2 points");
  std::vector<double> mags(gradient.size());
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    mags[i] = std::fabs(static_cast<double>(gradient[i]));
  }
  std::sort(mags.begin(), mags.end(), std::greater<>());
  // Suffix sums of squared magnitudes: sigma_k^2 = sum_{j>k} mag_j^2.
  std::vector<double> suffix_sq(mags.size() + 1, 0.0);
  for (std::size_t j = mags.size(); j > 0; --j) {
    suffix_sq[j - 1] = suffix_sq[j] + mags[j - 1] * mags[j - 1];
  }
  std::vector<SparsificationErrorPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto k = static_cast<std::size_t>(
        frac * static_cast<double>(mags.size()));
    curve.push_back({.k = k, .sigma_k = std::sqrt(suffix_sq[std::min(
                                  k, mags.size())])});
  }
  return curve;
}

}  // namespace sidco::stats
