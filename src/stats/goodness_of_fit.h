// Goodness-of-fit: Kolmogorov–Smirnov distance between data and a model CDF.
// Used to validate Property 2 (gradients follow a SID) in the Fig. 2/8
// benches and in tests.
#pragma once

#include <functional>
#include <span>

namespace sidco::stats {

/// sup_x |F_empirical(x) - model_cdf(x)| over the sample points.
/// `sample_cap` bounds the cost on multi-million-element gradients by using
/// an evenly strided subsample (0 = use all points).
double ks_statistic(std::span<const float> data,
                    const std::function<double(double)>& model_cdf,
                    std::size_t sample_cap = 0);

}  // namespace sidco::stats
