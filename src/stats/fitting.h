// Closed-form parameter estimators for the SIDs (paper §2.3, Appendix B.3).
//
// These are the *entire* per-iteration statistical cost of SIDCo: one or two
// linear passes producing sample moments, then O(1) arithmetic.
//  - Exponential: MLE  beta = mean(|g|)                       (Corollary 1.1)
//  - Gamma:       Minka/moment closed form for (alpha, beta)  (Corollary 1.2)
//  - GP:          moment matching for (alpha, beta)           (Corollary 1.3)
//  - Normal:      sample moments (GaussianKSGD baseline).
#pragma once

#include <span>

#include "stats/distributions.h"
#include "tensor/vector_ops.h"

namespace sidco::stats {

/// MLE of the exponential scale: beta-hat = mean(|m|).  Inputs may be signed
/// (raw gradients); magnitudes are taken internally.
Exponential fit_exponential(std::span<const float> magnitudes);

/// Same fit from precomputed fused moments (tensor::abs_moments) — lets one
/// gradient scan feed several fits.
Exponential fit_exponential(const tensor::AbsMoments& moments);

/// Exponential fit of exceedances over `shift` (Corollary 2.1):
/// beta-hat = mean(m - shift) for m already filtered to m >= shift.
Exponential fit_exponential_shifted(std::span<const float> exceedances,
                                    double shift);

struct GammaFit {
  double shape = 1.0;
  double scale = 1.0;
  /// s = log(mean) - mean(log); the Minka statistic.  Kept for diagnostics.
  double s_statistic = 0.0;
};

/// Closed-form gamma fit (Minka 2002 approximation of the MLE):
///   alpha = (3 - s + sqrt((s-3)^2 + 24 s)) / (12 s),  beta = mean / alpha.
/// Zero magnitudes are skipped in the log moment (they carry no magnitude
/// information); degenerate inputs fall back to an exponential-shaped fit
/// (alpha = 1).
GammaFit fit_gamma_minka(std::span<const float> magnitudes);

/// Same fit from fused moments; `moments` must have been computed with
/// `with_log = true`.
GammaFit fit_gamma_minka(const tensor::AbsMoments& moments);

struct GpFit {
  double shape = 0.0;
  double scale = 1.0;
  double location = 0.0;
};

/// Moment-matching GP fit (Hosking & Wallis 1987):
///   alpha = (1 - mu^2/sigma^2) / 2,   beta = mu (mu^2/sigma^2 + 1) / 2.
/// When `location` > 0 the moments are computed on (m - location) — the
/// peak-over-threshold fit of Lemma 2.  The shape is clamped to the
/// finite-moment range (-1/2, 1/2).
GpFit fit_gp_moments(std::span<const float> magnitudes, double location = 0.0);

/// Same fit at location 0 from fused moments.
GpFit fit_gp_moments(const tensor::AbsMoments& moments);

/// Sample-moment Normal fit on the *signed* values.
Normal fit_normal(std::span<const float> values);

/// Same fit from fused signed moments (one gradient scan).
Normal fit_normal(const tensor::SignedMoments& moments);

}  // namespace sidco::stats
