#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace sidco::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-15;
constexpr double kTiny = 1e-300;

/// Series expansion of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a, x); converges quickly for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  util::check(a > 0.0, "regularized_gamma_p requires a > 0");
  util::check(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  return 1.0 - regularized_gamma_p(a, x);
}

double inverse_regularized_gamma_p(double a, double p) {
  util::check(a > 0.0, "inverse_regularized_gamma_p requires a > 0");
  util::check(p >= 0.0 && p < 1.0,
              "inverse_regularized_gamma_p requires p in [0, 1)");
  if (p == 0.0) return 0.0;

  // Initial guess (Numerical-Recipes-style): Wilson–Hilferty for a > 1,
  // small-a asymptotic otherwise.
  const double gln = std::lgamma(a);
  double x = 0.0;
  if (a > 1.0) {
    const double pp = (p < 0.5) ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
    if (p < 0.5) z = -z;
    const double a1 = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
    x = a * a1 * a1 * a1;
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }
  x = std::max(x, 1e-300);

  // Halley refinement on f(x) = P(a, x) - p.
  for (int it = 0; it < 60; ++it) {
    const double err = regularized_gamma_p(a, x) - p;
    const double log_pdf = -x + (a - 1.0) * std::log(x) - gln;
    const double pdf = std::exp(log_pdf);
    if (pdf <= 0.0) break;
    double dx = err / pdf;
    // Halley correction.
    dx /= std::max(0.5, 1.0 - 0.5 * std::min(1.0, dx * ((a - 1.0) / x - 1.0)));
    double next = x - dx;
    if (next <= 0.0) next = 0.5 * x;
    if (std::fabs(next - x) < 1e-14 * std::fabs(next) + 1e-300) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double digamma(double x) {
  util::check(x > 0.0, "digamma requires x > 0");
  double result = 0.0;
  // Shift x upward until the asymptotic series is accurate.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double erf_inv(double x) {
  util::check(x > -1.0 && x < 1.0, "erf_inv requires |x| < 1");
  if (x == 0.0) return 0.0;
  // Giles (2012) polynomial initialization, then two Newton steps on
  // f(w) = erf(w) - x, which give ~1e-15 accuracy.
  double w = -std::log((1.0 - x) * (1.0 + x));
  double p;
  if (w < 6.25) {
    w -= 3.125;
    p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * w;
    p = 1.2858480715256400167e-18 + p * w;
    p = 1.115787767802518096e-17 + p * w;
    p = -1.333171662854620906e-16 + p * w;
    p = 2.0972767875968561637e-17 + p * w;
    p = 6.6376381343583238325e-15 + p * w;
    p = -4.0545662729752068639e-14 + p * w;
    p = -8.1519341976054721522e-14 + p * w;
    p = 2.6335093153082322977e-12 + p * w;
    p = -1.2975133253453532498e-11 + p * w;
    p = -5.4154120542946279317e-11 + p * w;
    p = 1.051212273321532285e-09 + p * w;
    p = -4.1126339803469836976e-09 + p * w;
    p = -2.9070369957882005086e-08 + p * w;
    p = 4.2347877827932403518e-07 + p * w;
    p = -1.3654692000834678645e-06 + p * w;
    p = -1.3882523362786468719e-05 + p * w;
    p = 0.0001867342080340571352 + p * w;
    p = -0.00074070253416626697512 + p * w;
    p = -0.0060336708714301490533 + p * w;
    p = 0.24015818242558961693 + p * w;
    p = 1.6536545626831027356 + p * w;
  } else if (w < 16.0) {
    w = std::sqrt(w) - 3.25;
    p = 2.2137376921775787049e-09;
    p = 9.0756561938885390979e-08 + p * w;
    p = -2.7517406297064545428e-07 + p * w;
    p = 1.8239629214389227755e-08 + p * w;
    p = 1.5027403968909827627e-06 + p * w;
    p = -4.013867526981545969e-06 + p * w;
    p = 2.9234449089955446044e-06 + p * w;
    p = 1.2475304481671778723e-05 + p * w;
    p = -4.7318229009055733981e-05 + p * w;
    p = 6.8284851459573175448e-05 + p * w;
    p = 2.4031110387097893999e-05 + p * w;
    p = -0.0003550375203628474796 + p * w;
    p = 0.00095328937973738049703 + p * w;
    p = -0.0016882755560235047313 + p * w;
    p = 0.0024914420961078508066 + p * w;
    p = -0.0037512085075692412107 + p * w;
    p = 0.005370914553590063617 + p * w;
    p = 1.0052589676941592334 + p * w;
    p = 3.0838856104922207635 + p * w;
  } else {
    w = std::sqrt(w) - 5.0;
    p = -2.7109920616438573243e-11;
    p = -2.5556418169965252055e-10 + p * w;
    p = 1.5076572693500548083e-09 + p * w;
    p = -3.7894654401267369937e-09 + p * w;
    p = 7.6157012080783393804e-09 + p * w;
    p = -1.4960026627149240478e-08 + p * w;
    p = 2.9147953450901080826e-08 + p * w;
    p = -6.7711997758452339498e-08 + p * w;
    p = 2.2900482228026654717e-07 + p * w;
    p = -9.9298272942317002539e-07 + p * w;
    p = 4.5260625972231537039e-06 + p * w;
    p = -1.9681778105531670567e-05 + p * w;
    p = 7.5995277030017761139e-05 + p * w;
    p = -0.00021503011930044477347 + p * w;
    p = -0.00013871931833623122026 + p * w;
    p = 1.0103004648645343977 + p * w;
    p = 4.8499064014085844221 + p * w;
  }
  double result = p * x;
  // Two Newton refinements.
  static const double kTwoOverSqrtPi = 1.1283791670955125739;
  for (int i = 0; i < 2; ++i) {
    const double err = std::erf(result) - x;
    result -= err / (kTwoOverSqrtPi * std::exp(-result * result));
  }
  return result;
}

double normal_quantile(double p) {
  util::check(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
  static const double kSqrt2 = 1.4142135623730950488;
  return kSqrt2 * erf_inv(2.0 * p - 1.0);
}

}  // namespace sidco::stats
