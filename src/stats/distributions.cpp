#include "stats/distributions.h"

#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace sidco::stats {

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double scale) : scale_(scale) {
  util::check(scale > 0.0, "Exponential scale must be positive");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : std::exp(-x / scale_) / scale_;
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-x / scale_);
}

double Exponential::quantile(double p) const {
  util::check(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return -scale_ * std::log1p(-p);
}

double Exponential::sample(util::Rng& rng) const {
  double u = 0.0;
  while (u <= 0.0) u = rng.uniform();
  return -scale_ * std::log(u);
}

// ---------------------------------------------------------------------- Gamma

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  util::check(shape > 0.0, "Gamma shape must be positive");
  util::check(scale > 0.0, "Gamma scale must be positive");
}

double Gamma::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  const double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                         shape_ * std::log(scale_) - std::lgamma(shape_);
  return std::exp(log_pdf);
}

double Gamma::cdf(double x) const {
  return x <= 0.0 ? 0.0 : regularized_gamma_p(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  util::check(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return scale_ * inverse_regularized_gamma_p(shape_, p);
}

double Gamma::sample(util::Rng& rng) const {
  // Marsaglia–Tsang squeeze; for shape < 1 use the boosting identity
  // Gamma(a) = Gamma(a + 1) * U^{1/a}.
  double shape = shape_;
  double boost = 1.0;
  if (shape < 1.0) {
    double u = 0.0;
    while (u <= 0.0) u = rng.uniform();
    boost = std::pow(u, 1.0 / shape);
    shape += 1.0;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = 0.0;
    while (u <= 0.0) u = rng.uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2 ||
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

// --------------------------------------------------------- GeneralizedPareto

GeneralizedPareto::GeneralizedPareto(double shape, double scale,
                                     double location)
    : shape_(shape), scale_(scale), location_(location) {
  util::check(scale > 0.0, "GP scale must be positive");
  util::check(shape > -0.5 && shape < 0.5,
              "GP shape must lie in (-1/2, 1/2) for finite moments");
}

double GeneralizedPareto::pdf(double x) const {
  const double z = (x - location_) / scale_;
  if (z < 0.0) return 0.0;
  if (std::fabs(shape_) < 1e-12) return std::exp(-z) / scale_;
  const double base = 1.0 + shape_ * z;
  if (base <= 0.0) return 0.0;  // outside support for negative shape
  return std::pow(base, -1.0 / shape_ - 1.0) / scale_;
}

double GeneralizedPareto::cdf(double x) const {
  const double z = (x - location_) / scale_;
  if (z <= 0.0) return 0.0;
  if (std::fabs(shape_) < 1e-12) return 1.0 - std::exp(-z);
  const double base = 1.0 + shape_ * z;
  if (base <= 0.0) return 1.0;  // beyond upper endpoint (negative shape)
  return 1.0 - std::pow(base, -1.0 / shape_);
}

double GeneralizedPareto::quantile(double p) const {
  util::check(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  if (std::fabs(shape_) < 1e-12) return location_ - scale_ * std::log1p(-p);
  // (beta/alpha) * ((1-p)^{-alpha} - 1) + location; the paper's eq. (7) with
  // p = 1 - delta gives exp(-alpha log(delta)) = delta^{-alpha}.
  return location_ + scale_ / shape_ * (std::pow(1.0 - p, -shape_) - 1.0);
}

double GeneralizedPareto::sample(util::Rng& rng) const {
  return quantile(rng.uniform());
}

double GeneralizedPareto::mean() const {
  return location_ + scale_ / (1.0 - shape_);
}

double GeneralizedPareto::variance() const {
  const double denom = (1.0 - shape_) * (1.0 - shape_) * (1.0 - 2.0 * shape_);
  return scale_ * scale_ / denom;
}

// -------------------------------------------------------------------- Laplace

Laplace::Laplace(double scale) : scale_(scale) {
  util::check(scale > 0.0, "Laplace scale must be positive");
}

double Laplace::pdf(double x) const {
  return 0.5 / scale_ * std::exp(-std::fabs(x) / scale_);
}

double Laplace::cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / scale_);
  return 1.0 - 0.5 * std::exp(-x / scale_);
}

double Laplace::quantile(double p) const {
  util::check(p > 0.0 && p < 1.0, "Laplace quantile requires p in (0, 1)");
  if (p < 0.5) return scale_ * std::log(2.0 * p);
  return -scale_ * std::log(2.0 * (1.0 - p));
}

double Laplace::sample(util::Rng& rng) const {
  const Exponential magnitude(scale_);
  const double m = magnitude.sample(rng);
  return rng.uniform() < 0.5 ? -m : m;
}

// --------------------------------------------------------------------- Normal

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  util::check(stddev > 0.0, "Normal stddev must be positive");
}

double Normal::pdf(double x) const {
  static const double kInvSqrt2Pi = 0.39894228040143267794;
  const double z = (x - mean_) / stddev_;
  return kInvSqrt2Pi / stddev_ * std::exp(-0.5 * z * z);
}

double Normal::cdf(double x) const {
  static const double kInvSqrt2 = 0.70710678118654752440;
  return 0.5 * std::erfc(-(x - mean_) / stddev_ * kInvSqrt2);
}

double Normal::quantile(double p) const {
  return mean_ + stddev_ * normal_quantile(p);
}

double Normal::sample(util::Rng& rng) const {
  return rng.normal(mean_, stddev_);
}

}  // namespace sidco::stats
