#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace sidco::stats {

void StreamingMoments::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingMoments::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(sample_variance()); }

double empirical_quantile(std::vector<double> data, double p) {
  util::check(!data.empty(), "empirical_quantile requires data");
  util::check(p >= 0.0 && p <= 1.0, "quantile probability must be in [0, 1]");
  std::sort(data.begin(), data.end());
  if (data.size() == 1) return data.front();
  const double pos = p * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

ConfidenceInterval mean_confidence_interval(std::span<const double> data,
                                            double confidence) {
  util::check(!data.empty(), "confidence interval requires data");
  util::check(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1)");
  StreamingMoments m;
  for (double x : data) m.add(x);
  ConfidenceInterval ci;
  ci.mean = m.mean();
  if (data.size() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double half =
      z * m.stddev() / std::sqrt(static_cast<double>(data.size()));
  ci.lower = ci.mean - half;
  ci.upper = ci.mean + half;
  return ci;
}

std::vector<double> running_average(std::span<const double> series,
                                    std::size_t window) {
  util::check(window >= 1, "running_average window must be >= 1");
  std::vector<double> out;
  out.reserve(series.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    acc += series[i];
    if (i >= window) acc -= series[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

std::vector<double> exponential_moving_average(std::span<const double> series,
                                               double alpha) {
  util::check(alpha > 0.0 && alpha <= 1.0, "EMA alpha must be in (0, 1]");
  std::vector<double> out;
  out.reserve(series.size());
  double state = 0.0;
  bool primed = false;
  for (double x : series) {
    state = primed ? alpha * x + (1.0 - alpha) * state : x;
    primed = true;
    out.push_back(state);
  }
  return out;
}

}  // namespace sidco::stats
