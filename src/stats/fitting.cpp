#include "stats/fitting.h"

#include <algorithm>
#include <cmath>

#include "tensor/vector_ops.h"
#include "util/check.h"

namespace sidco::stats {

namespace {
constexpr double kMinScale = 1e-30;
constexpr double kGpShapeLimit = 0.499;

/// Shared Hosking & Wallis moment matching: both fit_gp_moments overloads
/// feed raw sums of the (already shifted) exceedance variable z through this
/// one clamp-and-match step so they cannot diverge.
stats::GpFit gp_moment_match(double sum_z, double sum_sq_z, double n,
                             double location) {
  const double mu = std::max(sum_z / n, kMinScale);
  const double var = std::max(sum_sq_z / n - mu * mu, kMinScale * kMinScale);
  const double ratio = mu * mu / var;
  stats::GpFit fit;
  fit.location = location;
  fit.shape = std::clamp(0.5 * (1.0 - ratio), -kGpShapeLimit, kGpShapeLimit);
  fit.scale = std::max(0.5 * mu * (ratio + 1.0), kMinScale);
  return fit;
}
}  // namespace

Exponential fit_exponential(std::span<const float> magnitudes) {
  util::check(!magnitudes.empty(), "fit_exponential requires data");
  return fit_exponential(tensor::abs_moments(magnitudes));
}

Exponential fit_exponential(const tensor::AbsMoments& moments) {
  util::check(moments.n > 0, "fit_exponential requires data");
  return Exponential(std::max(moments.mean_abs(), kMinScale));
}

Exponential fit_exponential_shifted(std::span<const float> exceedances,
                                    double shift) {
  util::check(!exceedances.empty(), "fit_exponential_shifted requires data");
  const double mu = tensor::mean_abs(exceedances) - shift;
  return Exponential(std::max(mu, kMinScale));
}


GammaFit fit_gamma_minka(std::span<const float> magnitudes) {
  util::check(!magnitudes.empty(), "fit_gamma_minka requires data");
  return fit_gamma_minka(tensor::abs_moments(
      magnitudes, std::numeric_limits<float>::infinity(), /*with_log=*/true));
}

GammaFit fit_gamma_minka(const tensor::AbsMoments& moments) {
  util::check(moments.n > 0, "fit_gamma_minka requires data");
  // Nonzero magnitudes with no log moment means the caller computed
  // abs_moments without with_log — fail loudly instead of silently
  // degenerating to the all-zero fallback below.
  util::check(moments.log_used > 0 || moments.sum_abs == 0.0,
              "gamma fit needs moments computed with with_log = true");
  const double mu = std::max(moments.mean_abs(), kMinScale);
  GammaFit fit;
  if (moments.log_used == 0) {
    // All-zero input: no magnitude information; return a flat exponential.
    fit.shape = 1.0;
    fit.scale = kMinScale;
    return fit;
  }
  const double s = std::log(mu) - moments.mean_log();
  fit.s_statistic = s;
  if (s <= 0.0 || !std::isfinite(s)) {
    // Jensen guarantees s >= 0; s == 0 means a point mass -> exponential-ish.
    fit.shape = 1.0;
  } else {
    fit.shape = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
                (12.0 * s);
  }
  fit.shape = std::clamp(fit.shape, 1e-3, 1e6);
  fit.scale = std::max(mu / fit.shape, kMinScale);
  return fit;
}

GpFit fit_gp_moments(std::span<const float> magnitudes, double location) {
  util::check(!magnitudes.empty(), "fit_gp_moments requires data");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float m : magnitudes) {
    const double z = std::fabs(static_cast<double>(m)) - location;
    sum += z;
    sum_sq += z * z;
  }
  return gp_moment_match(sum, sum_sq,
                         static_cast<double>(magnitudes.size()), location);
}

GpFit fit_gp_moments(const tensor::AbsMoments& moments) {
  util::check(moments.n > 0, "fit_gp_moments requires data");
  return gp_moment_match(moments.sum_abs, moments.sum_sq,
                         static_cast<double>(moments.n), /*location=*/0.0);
}

Normal fit_normal(std::span<const float> values) {
  util::check(!values.empty(), "fit_normal requires data");
  // Two-pass moments: stable for arbitrary (non-centered) data.  The hot
  // gradient path uses the SignedMoments overload, where one pass suffices.
  const double mu = tensor::mean(values);
  const double var = tensor::variance(values);
  return Normal(mu, std::max(std::sqrt(var), kMinScale));
}

Normal fit_normal(const tensor::SignedMoments& moments) {
  util::check(moments.n > 0, "fit_normal requires data");
  return Normal(moments.mean(),
                std::max(std::sqrt(moments.variance()), kMinScale));
}

}  // namespace sidco::stats
