#include "stats/fitting.h"

#include <algorithm>
#include <cmath>

#include "tensor/vector_ops.h"
#include "util/check.h"

namespace sidco::stats {

namespace {
constexpr double kMinScale = 1e-30;
constexpr double kGpShapeLimit = 0.499;
}  // namespace

Exponential fit_exponential(std::span<const float> magnitudes) {
  util::check(!magnitudes.empty(), "fit_exponential requires data");
  const double mu = tensor::mean_abs(magnitudes);
  return Exponential(std::max(mu, kMinScale));
}

Exponential fit_exponential_shifted(std::span<const float> exceedances,
                                    double shift) {
  util::check(!exceedances.empty(), "fit_exponential_shifted requires data");
  const double mu = tensor::mean_abs(exceedances) - shift;
  return Exponential(std::max(mu, kMinScale));
}

GammaFit fit_gamma_minka(std::span<const float> magnitudes) {
  util::check(!magnitudes.empty(), "fit_gamma_minka requires data");
  const double mu = std::max(tensor::mean_abs(magnitudes), kMinScale);
  const auto log_moment = tensor::mean_log_abs(magnitudes);
  GammaFit fit;
  if (log_moment.used == 0) {
    // All-zero input: no magnitude information; return a flat exponential.
    fit.shape = 1.0;
    fit.scale = kMinScale;
    return fit;
  }
  const double s = std::log(mu) - log_moment.mean_log;
  fit.s_statistic = s;
  if (s <= 0.0 || !std::isfinite(s)) {
    // Jensen guarantees s >= 0; s == 0 means a point mass -> exponential-ish.
    fit.shape = 1.0;
  } else {
    fit.shape = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
                (12.0 * s);
  }
  fit.shape = std::clamp(fit.shape, 1e-3, 1e6);
  fit.scale = std::max(mu / fit.shape, kMinScale);
  return fit;
}

GpFit fit_gp_moments(std::span<const float> magnitudes, double location) {
  util::check(!magnitudes.empty(), "fit_gp_moments requires data");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float m : magnitudes) {
    const double z = std::fabs(static_cast<double>(m)) - location;
    sum += z;
    sum_sq += z * z;
  }
  const double n = static_cast<double>(magnitudes.size());
  const double mu = std::max(sum / n, kMinScale);
  const double var = std::max(sum_sq / n - mu * mu, kMinScale * kMinScale);
  const double ratio = mu * mu / var;
  GpFit fit;
  fit.location = location;
  fit.shape = std::clamp(0.5 * (1.0 - ratio), -kGpShapeLimit, kGpShapeLimit);
  fit.scale = std::max(0.5 * mu * (ratio + 1.0), kMinScale);
  return fit;
}

Normal fit_normal(std::span<const float> values) {
  util::check(!values.empty(), "fit_normal requires data");
  const double mu = tensor::mean(values);
  const double var = tensor::variance(values);
  return Normal(mu, std::max(std::sqrt(var), kMinScale));
}

}  // namespace sidco::stats
