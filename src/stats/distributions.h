// The sparsity-inducing distributions (SIDs) used by SIDCo, plus the Normal
// distribution needed by the GaussianKSGD baseline.
//
// Each distribution exposes pdf / cdf / quantile / sample and its first two
// moments.  The "double" (symmetric around zero) variants used to model the
// signed gradient are provided as thin wrappers: if |G| ~ D then
// f_G(g) = f_D(|g|) / 2 and the (1 - delta/2) signed quantile equals the
// (1 - delta) quantile of |G| (Lemma 1).
#pragma once

#include "util/rng.h"

namespace sidco::stats {

/// Exponential(beta): f(x) = exp(-x/beta)/beta on x >= 0.
/// Models |G| when G is double-exponential (Laplace).
class Exponential {
 public:
  explicit Exponential(double scale);

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  /// Inverse CDF: -beta log(1 - p).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean() const { return scale_; }
  [[nodiscard]] double variance() const { return scale_ * scale_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double scale_;
};

/// Gamma(alpha, beta): f(x) = x^{a-1} e^{-x/b} / (b^a Gamma(a)) on x >= 0.
/// Models |G| when G is double-gamma.
class Gamma {
 public:
  Gamma(double shape, double scale);

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean() const { return shape_ * scale_; }
  [[nodiscard]] double variance() const { return shape_ * scale_ * scale_; }
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Generalized Pareto GP(shape alpha, scale beta, location a):
///   F(x) = 1 - (1 + alpha (x - a) / beta)^{-1/alpha},  x >= a.
/// alpha -> 0 degenerates to the shifted exponential; both signs of alpha in
/// (-1/2, 1/2) are supported (the range where mean and variance exist).
class GeneralizedPareto {
 public:
  GeneralizedPareto(double shape, double scale, double location = 0.0);

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double location() const { return location_; }

 private:
  double shape_;
  double scale_;
  double location_;
};

/// Laplace(beta) centred at zero — the signed double-exponential SID.
class Laplace {
 public:
  explicit Laplace(double scale);

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double scale_;
};

/// Normal(mu, sigma).
class Normal {
 public:
  Normal(double mean, double stddev);

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }

 private:
  double mean_;
  double stddev_;
};

/// Symmetric (signed) PDF of a magnitude distribution D: f(g) = f_D(|g|)/2.
/// Used for plotting/validating the "double" SIDs against empirical signed
/// gradient histograms (paper Figs. 2 and 8).
template <typename MagnitudeDist>
class Symmetric {
 public:
  explicit Symmetric(MagnitudeDist dist) : dist_(std::move(dist)) {}

  [[nodiscard]] double pdf(double g) const {
    return 0.5 * dist_.pdf(g < 0 ? -g : g);
  }
  [[nodiscard]] double cdf(double g) const {
    const double tail = 0.5 * (1.0 - dist_.cdf(g < 0 ? -g : g));
    return g < 0 ? tail : 1.0 - tail;
  }
  [[nodiscard]] double sample(util::Rng& rng) const {
    const double magnitude = dist_.sample(rng);
    return rng.uniform() < 0.5 ? -magnitude : magnitude;
  }
  [[nodiscard]] const MagnitudeDist& magnitude() const { return dist_; }

 private:
  MagnitudeDist dist_;
};

}  // namespace sidco::stats
