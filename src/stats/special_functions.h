// Special functions needed by the SID distributions.
//
// Everything is implemented from scratch (no external math library):
//  - regularized lower incomplete gamma P(a, x) and its inverse in x,
//  - digamma,
//  - inverse error function and the standard normal quantile.
// Accuracy targets are ~1e-10 relative over the parameter ranges exercised by
// gradient fitting (a in (0, 50], x in [0, 1e4]); the tests check these.
#pragma once

namespace sidco::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Requires a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Inverse of P(a, .) at probability p in [0, 1): returns x with
/// P(a, x) = p.  Uses an initial asymptotic guess refined by Halley steps.
double inverse_regularized_gamma_p(double a, double p);

/// Digamma (psi) function for positive arguments.
double digamma(double x);

/// Inverse error function on (-1, 1).
double erf_inv(double x);

/// Quantile of the standard normal distribution, p in (0, 1).
double normal_quantile(double p);

}  // namespace sidco::stats
