// Descriptive statistics: streaming moments, empirical quantiles, confidence
// intervals, and smoothed series.  Used by the metrics layer and the
// estimation-quality figures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sidco::stats {

/// Welford one-pass mean/variance accumulator.
class StreamingMoments {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (divides by n - 1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile with linear interpolation; `p` in [0, 1].
double empirical_quantile(std::vector<double> data, double p);

/// Normal-approximation confidence interval for the mean of `data`.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// `confidence` defaults to the paper's 90% error bars.
ConfidenceInterval mean_confidence_interval(std::span<const double> data,
                                            double confidence = 0.90);

/// Running average with window `w` (the paper's "smoothed" ratio curves).
std::vector<double> running_average(std::span<const double> series,
                                    std::size_t window);

/// Exponential moving average with smoothing factor `alpha` in (0, 1].
std::vector<double> exponential_moving_average(std::span<const double> series,
                                               double alpha);

}  // namespace sidco::stats
