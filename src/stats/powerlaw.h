// Compressibility analysis (paper Definition 1, Property 1, Fig. 7).
//
// A vector g is compressible if its sorted magnitudes obey a power-law decay
// g~_j <= c1 j^{-p} with p > 1/2; the Top-k error then decays as
// sigma_k <= c2 k^{1/2 - p}.  We estimate the decay exponent by least-squares
// regression of log(g~_j) on log(j) over the significant head of the vector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sidco::stats {

struct PowerLawFit {
  double exponent = 0.0;    ///< p in g~_j ~ c1 j^{-p}
  double log_c1 = 0.0;      ///< intercept
  double r_squared = 0.0;   ///< regression quality
  std::size_t points = 0;   ///< samples used
};

/// Fits the decay exponent of sorted |g| over ranks [head_skip, head_count].
/// The head skip avoids the few largest outliers; the count restricts the fit
/// to the significant region (paper fits over j <= 1e5).  Zero magnitudes are
/// excluded.
PowerLawFit fit_power_law_decay(std::span<const float> gradient,
                                std::size_t head_skip = 10,
                                std::size_t head_count = 100000);

/// True when the fitted decay exponent exceeds 1/2 (Definition 1).
bool is_compressible(const PowerLawFit& fit);

/// sigma_k(g) for a grid of k values (for the Fig. 7b decay plot).
struct SparsificationErrorPoint {
  std::size_t k = 0;
  double sigma_k = 0.0;
};
std::vector<SparsificationErrorPoint> sparsification_error_curve(
    std::span<const float> gradient, std::size_t points = 16);

}  // namespace sidco::stats
