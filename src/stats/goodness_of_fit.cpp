#include "stats/goodness_of_fit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace sidco::stats {

double ks_statistic(std::span<const float> data,
                    const std::function<double(double)>& model_cdf,
                    std::size_t sample_cap) {
  util::check(!data.empty(), "ks_statistic requires data");
  // One validation pass up front: a NaN would break std::sort's strict weak
  // ordering and silently corrupt the supremum.  The same pass finds the max
  // element the strided subsample below must never miss.
  float max_value = data.front();
  for (float v : data) {
    util::check(std::isfinite(v), "ks_statistic requires finite data");
    max_value = std::max(max_value, v);
  }
  std::vector<double> sorted;
  if (sample_cap != 0 && data.size() > sample_cap) {
    sorted.reserve(sample_cap + 1);
    const double stride =
        static_cast<double>(data.size()) / static_cast<double>(sample_cap);
    std::size_t previous = static_cast<std::size_t>(-1);
    bool saw_max = false;
    for (std::size_t i = 0; i < sample_cap; ++i) {
      // Double truncation can both repeat an index and (at large sizes)
      // round past the end; clamp and de-duplicate.
      const std::size_t index =
          std::min(data.size() - 1,
                   static_cast<std::size_t>(static_cast<double>(i) * stride));
      if (index == previous) continue;
      previous = index;
      sorted.push_back(static_cast<double>(data[index]));
      saw_max = saw_max || data[index] == max_value;
    }
    // floor(i * n / cap) only lands on n-1 when cap divides n, so the plain
    // stride systematically drops the largest element — biasing the KS
    // distance low exactly in the tail the SIDCo fits care about.
    if (!saw_max) sorted.push_back(static_cast<double>(max_value));
  } else {
    sorted.assign(data.begin(), data.end());
  }
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d_max = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = model_cdf(sorted[i]);
    const double below = static_cast<double>(i) / n;
    const double above = static_cast<double>(i + 1) / n;
    d_max = std::max({d_max, std::fabs(model - below), std::fabs(above - model)});
  }
  return d_max;
}

}  // namespace sidco::stats
