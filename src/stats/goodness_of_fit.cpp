#include "stats/goodness_of_fit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace sidco::stats {

double ks_statistic(std::span<const float> data,
                    const std::function<double(double)>& model_cdf,
                    std::size_t sample_cap) {
  util::check(!data.empty(), "ks_statistic requires data");
  std::vector<double> sorted;
  if (sample_cap != 0 && data.size() > sample_cap) {
    sorted.reserve(sample_cap);
    const double stride =
        static_cast<double>(data.size()) / static_cast<double>(sample_cap);
    for (std::size_t i = 0; i < sample_cap; ++i) {
      sorted.push_back(
          static_cast<double>(data[static_cast<std::size_t>(i * stride)]));
    }
  } else {
    sorted.assign(data.begin(), data.end());
  }
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d_max = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = model_cdf(sorted[i]);
    const double below = static_cast<double>(i) / n;
    const double above = static_cast<double>(i + 1) / n;
    d_max = std::max({d_max, std::fabs(model - below), std::fabs(above - model)});
  }
  return d_max;
}

}  // namespace sidco::stats
