#include "comm/frame.h"

#include <string>

#include "util/check.h"

namespace sidco::comm {

namespace {

void require(std::span<const std::uint8_t> buffer, std::size_t pos,
             std::size_t bytes) {
  util::check(pos + bytes <= buffer.size(),
              "frame: read past the end of the buffer");
}

// Offsets of the header's reserved regions (see the layout table in
// frame.h).  The single source of truth for "which bytes must be zero" —
// encode and decode both derive from it, so the two can never drift apart.
constexpr std::size_t kReservedByteOffsets[] = {7, 10, 11};

void require_reserved_zero(std::span<const std::uint8_t> buffer) {
  for (const std::size_t off : kReservedByteOffsets) {
    util::check(buffer[off] == 0, "frame: nonzero reserved byte");
  }
}

}  // namespace

std::uint32_t fnv1a32(std::span<const std::uint8_t> bytes) {
  std::uint32_t hash = 0x811c9dc5u;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x01000193u;
  }
  return hash;
}

std::uint16_t get_u16_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos) {
  require(buffer, pos, 2);
  return static_cast<std::uint16_t>(buffer[pos] |
                                    (std::uint16_t{buffer[pos + 1]} << 8));
}

std::uint32_t get_u32_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos) {
  require(buffer, pos, 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | buffer[pos + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t get_u64_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos) {
  require(buffer, pos, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buffer[pos + static_cast<std::size_t>(i)];
  }
  return v;
}

double get_f64_le(std::span<const std::uint8_t> buffer, std::size_t pos) {
  return std::bit_cast<double>(get_u64_le(buffer, pos));
}

float get_f32_le(std::span<const std::uint8_t> buffer, std::size_t pos) {
  return std::bit_cast<float>(get_u32_le(buffer, pos));
}

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    const FrameHeader& header) {
  util::check(header.body_len <= kMaxFrameBody,
              "frame: body length exceeds kMaxFrameBody");
  std::array<std::uint8_t, kFrameHeaderBytes> out{};
  std::size_t pos = 0;
  const auto put = [&](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out[pos++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put(kFrameMagic, 4);
  put(kFrameVersion, 2);
  put(header.kind, 1);
  put(0, 1);  // reserved
  put(header.from, 2);
  put(0, 2);  // reserved
  put(static_cast<std::uint32_t>(header.body_len), 4);
  put(header.seq, 8);
  return out;
}

void encode_frame(const FrameHeader& header,
                  std::span<const std::uint8_t> body,
                  std::vector<std::uint8_t>& out) {
  util::check(body.size() == header.body_len,
              "frame: body size does not match header.body_len");
  const auto head = encode_frame_header(header);
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), body.begin(), body.end());
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> buffer) {
  util::check(buffer.size() >= kFrameHeaderBytes,
              "frame: buffer shorter than a frame header");
  util::check(get_u32_le(buffer, 0) == kFrameMagic, "frame: bad magic");
  util::check(get_u16_le(buffer, 4) == kFrameVersion,
              "frame: unknown version");
  require_reserved_zero(buffer);
  FrameHeader header;
  header.kind = buffer[6];
  header.from = get_u16_le(buffer, 8);
  header.body_len = get_u32_le(buffer, 12);
  header.seq = get_u64_le(buffer, 16);
  if (header.body_len > kMaxFrameBody) {
    util::check_fail("frame: oversized body length " +
                     std::to_string(header.body_len) + " (max " +
                     std::to_string(kMaxFrameBody) + ")");
  }
  return header;
}

}  // namespace sidco::comm
