#include "comm/codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "comm/codec_simd.h"
#include "comm/varint.h"
#include "util/check.h"
#include "util/simd.h"

namespace sidco::comm {

using detail::get_varint;
using detail::put_varint;
using detail::varint_size;

namespace {

constexpr std::uint8_t kMagic0 = 0x53;  // 'S'
constexpr std::uint8_t kMagic1 = 0x43;  // 'C'

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(buf[at + b]) << (8 * b);
  }
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(buf[at + b]) << (8 * b);
  }
  return v;
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

float get_f32(std::span<const std::uint8_t> buf, std::size_t at) {
  return std::bit_cast<float>(get_u32(buf, at));
}

void write_header(std::vector<std::uint8_t>& out, PayloadKind kind,
                  std::uint8_t flags, std::uint8_t aux, std::uint64_t dense_dim,
                  std::uint64_t count) {
  out.clear();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(flags);
  out.push_back(aux);
  put_u16(out, 0);  // reserved
  put_u64(out, dense_dim);
  put_u64(out, count);
}

void write_values(util::simd::Level level, std::vector<std::uint8_t>& out,
                  std::span<const float> values, ValueMode mode) {
  // Fast paths assume the host byte order matches the little-endian wire
  // order; the forced-scalar level keeps the reference per-element loops.
  if constexpr (std::endian::native == std::endian::little) {
    if (level != util::simd::Level::kScalar) {
      const std::size_t at = out.size();
      if (mode == ValueMode::kFp32) {
        out.resize(at + values.size() * 4);
        std::memcpy(out.data() + at, values.data(), values.size() * 4);
      } else {
        out.resize(at + values.size() * 2);
        detail::float_to_half_bytes(level, values.data(), values.size(),
                                    out.data() + at);
      }
      return;
    }
  }
  if (mode == ValueMode::kFp32) {
    for (float v : values) put_f32(out, v);
  } else {
    for (float v : values) put_u16(out, float_to_half(v));
  }
}

float read_value(std::span<const std::uint8_t> buf, std::size_t at,
                 ValueMode mode) {
  if (mode == ValueMode::kFp32) return get_f32(buf, at);
  return half_to_float(
      static_cast<std::uint16_t>(buf[at] | (buf[at + 1] << 8)));
}

void read_values(util::simd::Level level, std::span<const std::uint8_t> buf,
                 std::size_t at, std::size_t count, ValueMode mode,
                 std::vector<float>& out) {
  if constexpr (std::endian::native == std::endian::little) {
    if (level != util::simd::Level::kScalar) {
      out.resize(count);
      if (mode == ValueMode::kFp32) {
        std::memcpy(out.data(), buf.data() + at, count * 4);
      } else {
        detail::half_to_float_bytes(level, buf.data() + at, count,
                                    out.data());
      }
      return;
    }
  }
  const std::size_t vb = value_bytes(mode);
  for (std::size_t j = 0; j < count; ++j) {
    out.push_back(read_value(buf, at + j * vb, mode));
  }
}

void check_canonical_for_encode(const tensor::SparseGradient& g) {
  util::check(g.dense_dim <= std::numeric_limits<std::uint32_t>::max(),
              "wire: dense_dim exceeds the u32 index range");
  // One authoritative definition of canonical form (arity match, strictly
  // increasing in-range indices): SparseGradient::is_canonical().
  util::check(g.is_canonical(),
              "wire: sparse gradient is not canonical (sorted unique "
              "in-range indices required)");
}

}  // namespace

std::uint16_t float_to_half(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::uint32_t exponent = (bits >> 23) & 0xFFU;
  std::uint32_t mantissa = bits & 0x007FFFFFU;

  if (exponent == 0xFFU) {  // inf / NaN
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0));
  }
  // Rebias 127 -> 15.
  const int half_exp = static_cast<int>(exponent) - 127 + 15;
  if (half_exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (half_exp <= 0) {  // subnormal or zero
    if (half_exp < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x00800000U;  // implicit leading 1
    const int shift = 14 - half_exp;  // in [14, 24]
    const std::uint32_t rounded =
        (mantissa >> shift) +
        // Round to nearest, ties to even.
        (((mantissa >> (shift - 1)) & 1U) &&
                 ((mantissa & ((1U << (shift - 1)) - 1U)) != 0 ||
                  ((mantissa >> shift) & 1U))
             ? 1U
             : 0U);
    return static_cast<std::uint16_t>(sign | rounded);
  }
  std::uint32_t half =
      static_cast<std::uint32_t>(half_exp) << 10 | (mantissa >> 13);
  // Round to nearest, ties to even, possibly carrying into the exponent
  // (and to infinity at the top — IEEE-correct).
  const std::uint32_t round_bits = mantissa & 0x1FFFU;
  if (round_bits > 0x1000U || (round_bits == 0x1000U && (half & 1U))) {
    half += 1;
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000U) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1FU;
  std::uint32_t mantissa = half & 0x03FFU;

  std::uint32_t bits;
  if (exponent == 0x1FU) {  // inf / NaN
    bits = sign | 0x7F800000U | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Normalize the subnormal.
      int e = -1;
      do {
        mantissa <<= 1;
        ++e;
      } while ((mantissa & 0x0400U) == 0);
      mantissa &= 0x03FFU;
      bits = sign |
             (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (mantissa << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

void float_to_half_n(const float* in, std::size_t n, std::uint16_t* out) {
  // The byte-stream helpers speak little-endian wire order, which matches
  // the in-memory u16 layout only on little-endian hosts.
  if constexpr (std::endian::native == std::endian::little) {
    detail::float_to_half_bytes(util::simd::active(), in, n,
                                reinterpret_cast<std::uint8_t*>(out));
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = float_to_half(in[i]);
  }
}

void half_to_float_n(const std::uint16_t* in, std::size_t n, float* out) {
  if constexpr (std::endian::native == std::endian::little) {
    detail::half_to_float_bytes(util::simd::active(),
                                reinterpret_cast<const std::uint8_t*>(in), n,
                                out);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = half_to_float(in[i]);
  }
}

std::size_t varint_index_bytes(const tensor::SparseGradient& gradient) {
  std::size_t bytes = 0;
  std::uint32_t prev = 0;
  for (std::size_t j = 0; j < gradient.indices.size(); ++j) {
    const std::uint64_t delta =
        j == 0 ? gradient.indices[0]
               : static_cast<std::uint64_t>(gradient.indices[j]) - prev - 1;
    bytes += varint_size(delta);
    prev = gradient.indices[j];
  }
  return bytes;
}

IndexMode select_index_mode(const tensor::SparseGradient& gradient) {
  return varint_index_bytes(gradient) <= bitmap_index_bytes(gradient.dense_dim)
             ? IndexMode::kVarintDelta
             : IndexMode::kBitmap;
}

std::size_t encoded_sparse_bytes(const tensor::SparseGradient& gradient,
                                 ValueMode mode) {
  const std::size_t index_bytes =
      std::min(varint_index_bytes(gradient),
               bitmap_index_bytes(gradient.dense_dim));
  return kHeaderBytes + index_bytes + gradient.nnz() * value_bytes(mode);
}

std::size_t encode_sparse(const tensor::SparseGradient& gradient,
                          ValueMode mode, std::vector<std::uint8_t>& out) {
  check_canonical_for_encode(gradient);
  const std::size_t vbytes = varint_index_bytes(gradient);
  const std::size_t bbytes = bitmap_index_bytes(gradient.dense_dim);
  // Same tie-break as select_index_mode: varint unless the bitmap is
  // strictly smaller.
  const IndexMode index_mode =
      vbytes <= bbytes ? IndexMode::kVarintDelta : IndexMode::kBitmap;
  const std::uint8_t flags =
      static_cast<std::uint8_t>(index_mode) |
      static_cast<std::uint8_t>(static_cast<std::uint8_t>(mode) << 1);
  write_header(out, PayloadKind::kSparse, flags, 0, gradient.dense_dim,
               gradient.nnz());

  const util::simd::Level level = util::simd::active();
  const std::size_t index_at = out.size();
  if (index_mode == IndexMode::kVarintDelta) {
    out.resize(index_at + vbytes);
    detail::encode_varint_deltas(level, gradient.indices,
                                 out.data() + index_at);
  } else {
    out.resize(index_at + bbytes, 0);
    detail::build_bitmap(level, gradient.indices, out.data() + index_at,
                         bbytes);
  }
  write_values(level, out, gradient.values, mode);
  return out.size();
}

MessageInfo peek_header(std::span<const std::uint8_t> buffer) {
  util::check(buffer.size() >= kHeaderBytes, "wire: buffer shorter than header");
  util::check(buffer[0] == kMagic0 && buffer[1] == kMagic1,
              "wire: bad magic");
  util::check(buffer[2] == kWireVersion, "wire: unsupported wire version");
  const std::uint8_t kind = buffer[3];
  util::check(kind <= static_cast<std::uint8_t>(PayloadKind::kQuantized),
              "wire: unknown payload kind");
  const std::uint8_t flags = buffer[4];
  util::check((flags & ~0x03U) == 0, "wire: unknown flag bits");
  util::check(buffer[6] == 0 && buffer[7] == 0, "wire: nonzero reserved bytes");

  MessageInfo info;
  info.kind = static_cast<PayloadKind>(kind);
  info.index_mode = static_cast<IndexMode>(flags & 0x01U);
  info.value_mode = static_cast<ValueMode>((flags >> 1) & 0x01U);
  info.symbol_bits = buffer[5];
  const std::uint64_t dense_dim = get_u64(buffer, 8);
  const std::uint64_t count = get_u64(buffer, 16);
  util::check(dense_dim <= std::numeric_limits<std::uint32_t>::max(),
              "wire: dense_dim exceeds the u32 index range");
  info.dense_dim = static_cast<std::size_t>(dense_dim);
  info.count = static_cast<std::size_t>(count);
  info.encoded_bytes = buffer.size();
  if (info.kind == PayloadKind::kQuantized) {
    util::check(info.symbol_bits >= 1 && info.symbol_bits <= 32,
                "wire: quantized symbol bits out of range");
  } else {
    util::check(info.symbol_bits == 0, "wire: nonzero aux byte");
  }
  return info;
}

MessageInfo decode_sparse(std::span<const std::uint8_t> buffer,
                          tensor::SparseGradient& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kSparse,
              "wire: expected a sparse payload");
  util::check(info.count <= info.dense_dim, "wire: nnz exceeds dense_dim");
  // The encoder never emits bitmap indexing for an empty selection: varint
  // costs 0 index bytes there and select_index_mode breaks ties toward
  // varint.  A bitmap header claiming zero nnz is therefore always a forged
  // or corrupt buffer — reject it outright instead of accepting a payload no
  // encoder can produce.
  util::check(info.index_mode == IndexMode::kVarintDelta || info.count > 0,
              "wire: bitmap index mode with zero nnz");

  // Bound the declared nnz by what the buffer could possibly hold (>= 1
  // byte per varint index / the full bitmap, plus the value section) BEFORE
  // reserving output storage — a 24-byte hostile buffer claiming 2^32
  // entries must fail with CheckError, not a multi-GB allocation.
  const std::size_t vb = value_bytes(info.value_mode);
  if (info.index_mode == IndexMode::kVarintDelta) {
    util::check(buffer.size() >= kHeaderBytes + info.count * (1 + vb),
                "wire: buffer too small for declared nnz");
  } else {
    util::check(buffer.size() == kHeaderBytes +
                                     bitmap_index_bytes(info.dense_dim) +
                                     info.count * vb,
                "wire: payload size does not match header");
  }

  out.dense_dim = info.dense_dim;
  out.indices.clear();
  out.values.clear();
  out.indices.reserve(info.count);
  out.values.reserve(info.count);

  const util::simd::Level level = util::simd::active();
  std::size_t pos = kHeaderBytes;
  if (info.index_mode == IndexMode::kVarintDelta) {
    detail::decode_varint_deltas(level, buffer, pos, info.count,
                                 info.dense_dim, out.indices);
  } else {
    const std::size_t bitmap_bytes = bitmap_index_bytes(info.dense_dim);
    detail::scan_bitmap(level, buffer.data() + pos, bitmap_bytes,
                        info.dense_dim, out.indices);
    util::check(out.indices.size() == info.count,
                "wire: bitmap population does not match nnz");
    pos += bitmap_bytes;
  }

  util::check(buffer.size() == pos + info.count * vb,
              "wire: payload size does not match header");
  read_values(level, buffer, pos, info.count, info.value_mode, out.values);
  return info;
}

std::size_t encode_dense(std::span<const float> values, ValueMode mode,
                         std::vector<std::uint8_t>& out) {
  const std::uint8_t flags =
      static_cast<std::uint8_t>(static_cast<std::uint8_t>(mode) << 1);
  write_header(out, PayloadKind::kDense, flags, 0, values.size(),
               values.size());
  write_values(util::simd::active(), out, values, mode);
  return out.size();
}

MessageInfo decode_dense(std::span<const std::uint8_t> buffer,
                         std::vector<float>& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kDense,
              "wire: expected a dense payload");
  util::check(info.count == info.dense_dim,
              "wire: dense count must equal dense_dim");
  util::check(info.index_mode == IndexMode::kVarintDelta,
              "wire: dense payloads take no index mode bit");
  const std::size_t vb = value_bytes(info.value_mode);
  util::check(buffer.size() == kHeaderBytes + info.count * vb,
              "wire: payload size does not match header");
  out.clear();
  out.reserve(info.count);
  read_values(util::simd::active(), buffer, kHeaderBytes, info.count,
              info.value_mode, out);
  return info;
}

std::size_t encode_quantized(const QuantizedPayload& payload,
                             std::vector<std::uint8_t>& out) {
  util::check(payload.symbol_bits >= 1 && payload.symbol_bits <= 32,
              "wire: quantized symbol bits out of range");
  const std::size_t n = payload.symbols.size();
  write_header(out, PayloadKind::kQuantized, 0, payload.symbol_bits, n, n);
  put_f32(out, payload.scale);

  const std::size_t packed_bytes =
      (n * payload.symbol_bits + 7) / 8;
  const std::size_t packed_at = out.size();
  out.resize(out.size() + packed_bytes, 0);
  detail::pack_symbols(util::simd::active(), payload.symbols,
                       payload.symbol_bits, out.data() + packed_at);
  return out.size();
}

MessageInfo decode_quantized(std::span<const std::uint8_t> buffer,
                             QuantizedPayload& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kQuantized,
              "wire: expected a quantized payload");
  util::check(info.count == info.dense_dim,
              "wire: quantized count must equal dense_dim");
  util::check(info.index_mode == IndexMode::kVarintDelta &&
                  info.value_mode == ValueMode::kFp32,
              "wire: quantized payloads take no mode bits");
  const std::size_t packed_bytes = (info.count * info.symbol_bits + 7) / 8;
  util::check(buffer.size() == kHeaderBytes + 4 + packed_bytes,
              "wire: payload size does not match header");

  out.scale = get_f32(buffer, kHeaderBytes);
  out.symbol_bits = info.symbol_bits;
  out.symbols.clear();
  out.symbols.reserve(info.count);
  detail::unpack_symbols(util::simd::active(), buffer.data() + kHeaderBytes + 4,
                         info.count, info.symbol_bits, out.symbols);
  return info;
}

std::size_t encode_gradient(const tensor::SparseGradient& gradient,
                            ValueMode mode, std::vector<std::uint8_t>& out) {
  if (gradient.nnz() == gradient.dense_dim) {
    return encode_dense(gradient.values, mode, out);
  }
  return encode_sparse(gradient, mode, out);
}

std::size_t encode_dense_or_sparse(std::span<const float> values,
                                   ValueMode mode,
                                   tensor::SparseGradient& scratch,
                                   std::vector<std::uint8_t>& out) {
  scratch.dense_dim = values.size();
  scratch.indices.clear();
  scratch.values.clear();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0F) {
      scratch.indices.push_back(static_cast<std::uint32_t>(i));
      scratch.values.push_back(values[i]);
    }
  }
  if (encoded_sparse_bytes(scratch, mode) <
      encoded_dense_bytes(values.size(), mode)) {
    return encode_sparse(scratch, mode, out);
  }
  return encode_dense(values, mode, out);
}

}  // namespace sidco::comm
