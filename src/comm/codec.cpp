#include "comm/codec.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/check.h"

namespace sidco::comm {

namespace {

constexpr std::uint8_t kMagic0 = 0x53;  // 'S'
constexpr std::uint8_t kMagic1 = 0x43;  // 'C'
constexpr std::size_t kMaxIndexVarintBytes = 5;  // u32 range

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(buf[at + b]) << (8 * b);
  }
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(buf[at + b]) << (8 * b);
  }
  return v;
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

float get_f32(std::span<const std::uint8_t> buf, std::size_t at) {
  return std::bit_cast<float>(get_u32(buf, at));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80U);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads one index varint at `pos` (advanced past it).  Bounded to the u32
/// range so hostile length prefixes cannot drive unbounded reads or
/// accumulator overflow downstream.
std::uint64_t get_varint(std::span<const std::uint8_t> buf, std::size_t& pos) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < kMaxIndexVarintBytes; ++i) {
    util::check(pos < buf.size(), "wire: truncated varint");
    const std::uint8_t byte = buf[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80U) == 0) return v;
  }
  util::check_fail("wire: varint exceeds index range");
}

void write_header(std::vector<std::uint8_t>& out, PayloadKind kind,
                  std::uint8_t flags, std::uint8_t aux, std::uint64_t dense_dim,
                  std::uint64_t count) {
  out.clear();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(flags);
  out.push_back(aux);
  put_u16(out, 0);  // reserved
  put_u64(out, dense_dim);
  put_u64(out, count);
}

void write_values(std::vector<std::uint8_t>& out,
                  std::span<const float> values, ValueMode mode) {
  if (mode == ValueMode::kFp32) {
    for (float v : values) put_f32(out, v);
  } else {
    for (float v : values) put_u16(out, float_to_half(v));
  }
}

float read_value(std::span<const std::uint8_t> buf, std::size_t at,
                 ValueMode mode) {
  if (mode == ValueMode::kFp32) return get_f32(buf, at);
  return half_to_float(
      static_cast<std::uint16_t>(buf[at] | (buf[at + 1] << 8)));
}

void check_canonical_for_encode(const tensor::SparseGradient& g) {
  util::check(g.dense_dim <= std::numeric_limits<std::uint32_t>::max(),
              "wire: dense_dim exceeds the u32 index range");
  // One authoritative definition of canonical form (arity match, strictly
  // increasing in-range indices): SparseGradient::is_canonical().
  util::check(g.is_canonical(),
              "wire: sparse gradient is not canonical (sorted unique "
              "in-range indices required)");
}

}  // namespace

std::uint16_t float_to_half(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::uint32_t exponent = (bits >> 23) & 0xFFU;
  std::uint32_t mantissa = bits & 0x007FFFFFU;

  if (exponent == 0xFFU) {  // inf / NaN
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0));
  }
  // Rebias 127 -> 15.
  const int half_exp = static_cast<int>(exponent) - 127 + 15;
  if (half_exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (half_exp <= 0) {  // subnormal or zero
    if (half_exp < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x00800000U;  // implicit leading 1
    const int shift = 14 - half_exp;  // in [14, 24]
    const std::uint32_t rounded =
        (mantissa >> shift) +
        // Round to nearest, ties to even.
        (((mantissa >> (shift - 1)) & 1U) &&
                 ((mantissa & ((1U << (shift - 1)) - 1U)) != 0 ||
                  ((mantissa >> shift) & 1U))
             ? 1U
             : 0U);
    return static_cast<std::uint16_t>(sign | rounded);
  }
  std::uint32_t half =
      static_cast<std::uint32_t>(half_exp) << 10 | (mantissa >> 13);
  // Round to nearest, ties to even, possibly carrying into the exponent
  // (and to infinity at the top — IEEE-correct).
  const std::uint32_t round_bits = mantissa & 0x1FFFU;
  if (round_bits > 0x1000U || (round_bits == 0x1000U && (half & 1U))) {
    half += 1;
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000U) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1FU;
  std::uint32_t mantissa = half & 0x03FFU;

  std::uint32_t bits;
  if (exponent == 0x1FU) {  // inf / NaN
    bits = sign | 0x7F800000U | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Normalize the subnormal.
      int e = -1;
      do {
        mantissa <<= 1;
        ++e;
      } while ((mantissa & 0x0400U) == 0);
      mantissa &= 0x03FFU;
      bits = sign |
             (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (mantissa << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

std::size_t varint_index_bytes(const tensor::SparseGradient& gradient) {
  std::size_t bytes = 0;
  std::uint32_t prev = 0;
  for (std::size_t j = 0; j < gradient.indices.size(); ++j) {
    const std::uint64_t delta =
        j == 0 ? gradient.indices[0]
               : static_cast<std::uint64_t>(gradient.indices[j]) - prev - 1;
    bytes += varint_size(delta);
    prev = gradient.indices[j];
  }
  return bytes;
}

IndexMode select_index_mode(const tensor::SparseGradient& gradient) {
  return varint_index_bytes(gradient) <= bitmap_index_bytes(gradient.dense_dim)
             ? IndexMode::kVarintDelta
             : IndexMode::kBitmap;
}

std::size_t encoded_sparse_bytes(const tensor::SparseGradient& gradient,
                                 ValueMode mode) {
  const std::size_t index_bytes =
      std::min(varint_index_bytes(gradient),
               bitmap_index_bytes(gradient.dense_dim));
  return kHeaderBytes + index_bytes + gradient.nnz() * value_bytes(mode);
}

std::size_t encode_sparse(const tensor::SparseGradient& gradient,
                          ValueMode mode, std::vector<std::uint8_t>& out) {
  check_canonical_for_encode(gradient);
  const IndexMode index_mode = select_index_mode(gradient);
  const std::uint8_t flags =
      static_cast<std::uint8_t>(index_mode) |
      static_cast<std::uint8_t>(static_cast<std::uint8_t>(mode) << 1);
  write_header(out, PayloadKind::kSparse, flags, 0, gradient.dense_dim,
               gradient.nnz());

  if (index_mode == IndexMode::kVarintDelta) {
    std::uint32_t prev = 0;
    for (std::size_t j = 0; j < gradient.indices.size(); ++j) {
      const std::uint64_t delta =
          j == 0 ? gradient.indices[0]
                 : static_cast<std::uint64_t>(gradient.indices[j]) - prev - 1;
      put_varint(out, delta);
      prev = gradient.indices[j];
    }
  } else {
    const std::size_t bitmap_at = out.size();
    out.resize(out.size() + bitmap_index_bytes(gradient.dense_dim), 0);
    for (std::uint32_t index : gradient.indices) {
      out[bitmap_at + index / 8] |= static_cast<std::uint8_t>(1U << (index % 8));
    }
  }
  write_values(out, gradient.values, mode);
  return out.size();
}

MessageInfo peek_header(std::span<const std::uint8_t> buffer) {
  util::check(buffer.size() >= kHeaderBytes, "wire: buffer shorter than header");
  util::check(buffer[0] == kMagic0 && buffer[1] == kMagic1,
              "wire: bad magic");
  util::check(buffer[2] == kWireVersion, "wire: unsupported wire version");
  const std::uint8_t kind = buffer[3];
  util::check(kind <= static_cast<std::uint8_t>(PayloadKind::kQuantized),
              "wire: unknown payload kind");
  const std::uint8_t flags = buffer[4];
  util::check((flags & ~0x03U) == 0, "wire: unknown flag bits");
  util::check(buffer[6] == 0 && buffer[7] == 0, "wire: nonzero reserved bytes");

  MessageInfo info;
  info.kind = static_cast<PayloadKind>(kind);
  info.index_mode = static_cast<IndexMode>(flags & 0x01U);
  info.value_mode = static_cast<ValueMode>((flags >> 1) & 0x01U);
  info.symbol_bits = buffer[5];
  const std::uint64_t dense_dim = get_u64(buffer, 8);
  const std::uint64_t count = get_u64(buffer, 16);
  util::check(dense_dim <= std::numeric_limits<std::uint32_t>::max(),
              "wire: dense_dim exceeds the u32 index range");
  info.dense_dim = static_cast<std::size_t>(dense_dim);
  info.count = static_cast<std::size_t>(count);
  info.encoded_bytes = buffer.size();
  if (info.kind == PayloadKind::kQuantized) {
    util::check(info.symbol_bits >= 1 && info.symbol_bits <= 32,
                "wire: quantized symbol bits out of range");
  } else {
    util::check(info.symbol_bits == 0, "wire: nonzero aux byte");
  }
  return info;
}

MessageInfo decode_sparse(std::span<const std::uint8_t> buffer,
                          tensor::SparseGradient& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kSparse,
              "wire: expected a sparse payload");
  util::check(info.count <= info.dense_dim, "wire: nnz exceeds dense_dim");
  // The encoder never emits bitmap indexing for an empty selection: varint
  // costs 0 index bytes there and select_index_mode breaks ties toward
  // varint.  A bitmap header claiming zero nnz is therefore always a forged
  // or corrupt buffer — reject it outright instead of accepting a payload no
  // encoder can produce.
  util::check(info.index_mode == IndexMode::kVarintDelta || info.count > 0,
              "wire: bitmap index mode with zero nnz");

  // Bound the declared nnz by what the buffer could possibly hold (>= 1
  // byte per varint index / the full bitmap, plus the value section) BEFORE
  // reserving output storage — a 24-byte hostile buffer claiming 2^32
  // entries must fail with CheckError, not a multi-GB allocation.
  const std::size_t vb = value_bytes(info.value_mode);
  if (info.index_mode == IndexMode::kVarintDelta) {
    util::check(buffer.size() >= kHeaderBytes + info.count * (1 + vb),
                "wire: buffer too small for declared nnz");
  } else {
    util::check(buffer.size() == kHeaderBytes +
                                     bitmap_index_bytes(info.dense_dim) +
                                     info.count * vb,
                "wire: payload size does not match header");
  }

  out.dense_dim = info.dense_dim;
  out.indices.clear();
  out.values.clear();
  out.indices.reserve(info.count);
  out.values.reserve(info.count);

  std::size_t pos = kHeaderBytes;
  if (info.index_mode == IndexMode::kVarintDelta) {
    std::uint64_t prev = 0;
    for (std::size_t j = 0; j < info.count; ++j) {
      const std::uint64_t delta = get_varint(buffer, pos);
      const std::uint64_t index = j == 0 ? delta : prev + 1 + delta;
      util::check(index < info.dense_dim, "wire: sparse index out of range");
      out.indices.push_back(static_cast<std::uint32_t>(index));
      prev = index;
    }
  } else {
    const std::size_t bitmap_bytes = bitmap_index_bytes(info.dense_dim);
    for (std::size_t byte = 0; byte < bitmap_bytes; ++byte) {
      const std::uint8_t bits = buffer[pos + byte];
      if (bits == 0) continue;
      for (std::size_t bit = 0; bit < 8; ++bit) {
        if ((bits & (1U << bit)) == 0) continue;
        const std::size_t index = byte * 8 + bit;
        util::check(index < info.dense_dim,
                    "wire: bitmap bit beyond dense_dim");
        out.indices.push_back(static_cast<std::uint32_t>(index));
      }
    }
    util::check(out.indices.size() == info.count,
                "wire: bitmap population does not match nnz");
    pos += bitmap_bytes;
  }

  util::check(buffer.size() == pos + info.count * vb,
              "wire: payload size does not match header");
  for (std::size_t j = 0; j < info.count; ++j) {
    out.values.push_back(read_value(buffer, pos + j * vb, info.value_mode));
  }
  return info;
}

std::size_t encode_dense(std::span<const float> values, ValueMode mode,
                         std::vector<std::uint8_t>& out) {
  const std::uint8_t flags =
      static_cast<std::uint8_t>(static_cast<std::uint8_t>(mode) << 1);
  write_header(out, PayloadKind::kDense, flags, 0, values.size(),
               values.size());
  write_values(out, values, mode);
  return out.size();
}

MessageInfo decode_dense(std::span<const std::uint8_t> buffer,
                         std::vector<float>& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kDense,
              "wire: expected a dense payload");
  util::check(info.count == info.dense_dim,
              "wire: dense count must equal dense_dim");
  util::check(info.index_mode == IndexMode::kVarintDelta,
              "wire: dense payloads take no index mode bit");
  const std::size_t vb = value_bytes(info.value_mode);
  util::check(buffer.size() == kHeaderBytes + info.count * vb,
              "wire: payload size does not match header");
  out.clear();
  out.reserve(info.count);
  for (std::size_t j = 0; j < info.count; ++j) {
    out.push_back(read_value(buffer, kHeaderBytes + j * vb, info.value_mode));
  }
  return info;
}

std::size_t encode_quantized(const QuantizedPayload& payload,
                             std::vector<std::uint8_t>& out) {
  util::check(payload.symbol_bits >= 1 && payload.symbol_bits <= 32,
              "wire: quantized symbol bits out of range");
  const std::size_t n = payload.symbols.size();
  write_header(out, PayloadKind::kQuantized, 0, payload.symbol_bits, n, n);
  put_f32(out, payload.scale);

  const std::size_t packed_bytes =
      (n * payload.symbol_bits + 7) / 8;
  const std::size_t packed_at = out.size();
  out.resize(out.size() + packed_bytes, 0);
  const std::uint64_t mask = payload.symbol_bits == 32
                                 ? 0xFFFFFFFFULL
                                 : (1ULL << payload.symbol_bits) - 1;
  std::size_t bit_pos = 0;
  for (std::uint32_t symbol : payload.symbols) {
    util::check((symbol & ~mask) == 0, "wire: symbol exceeds symbol_bits");
    std::uint64_t v = symbol;
    std::size_t bits_left = payload.symbol_bits;
    while (bits_left > 0) {
      const std::size_t byte = packed_at + bit_pos / 8;
      const std::size_t offset = bit_pos % 8;
      const std::size_t take = std::min<std::size_t>(8 - offset, bits_left);
      out[byte] |= static_cast<std::uint8_t>((v & ((1ULL << take) - 1))
                                             << offset);
      v >>= take;
      bit_pos += take;
      bits_left -= take;
    }
  }
  return out.size();
}

MessageInfo decode_quantized(std::span<const std::uint8_t> buffer,
                             QuantizedPayload& out) {
  const MessageInfo info = peek_header(buffer);
  util::check(info.kind == PayloadKind::kQuantized,
              "wire: expected a quantized payload");
  util::check(info.count == info.dense_dim,
              "wire: quantized count must equal dense_dim");
  util::check(info.index_mode == IndexMode::kVarintDelta &&
                  info.value_mode == ValueMode::kFp32,
              "wire: quantized payloads take no mode bits");
  const std::size_t packed_bytes = (info.count * info.symbol_bits + 7) / 8;
  util::check(buffer.size() == kHeaderBytes + 4 + packed_bytes,
              "wire: payload size does not match header");

  out.scale = get_f32(buffer, kHeaderBytes);
  out.symbol_bits = info.symbol_bits;
  out.symbols.clear();
  out.symbols.reserve(info.count);
  const std::size_t packed_at = kHeaderBytes + 4;
  std::size_t bit_pos = 0;
  for (std::size_t j = 0; j < info.count; ++j) {
    std::uint64_t v = 0;
    std::size_t got = 0;
    while (got < info.symbol_bits) {
      const std::size_t byte = packed_at + bit_pos / 8;
      const std::size_t offset = bit_pos % 8;
      const std::size_t take =
          std::min<std::size_t>(8 - offset, info.symbol_bits - got);
      v |= (static_cast<std::uint64_t>(buffer[byte] >> offset) &
            ((1ULL << take) - 1))
           << got;
      got += take;
      bit_pos += take;
    }
    out.symbols.push_back(static_cast<std::uint32_t>(v));
  }
  return info;
}

std::size_t encode_gradient(const tensor::SparseGradient& gradient,
                            ValueMode mode, std::vector<std::uint8_t>& out) {
  if (gradient.nnz() == gradient.dense_dim) {
    return encode_dense(gradient.values, mode, out);
  }
  return encode_sparse(gradient, mode, out);
}

std::size_t encode_dense_or_sparse(std::span<const float> values,
                                   ValueMode mode,
                                   tensor::SparseGradient& scratch,
                                   std::vector<std::uint8_t>& out) {
  scratch.dense_dim = values.size();
  scratch.indices.clear();
  scratch.values.clear();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0F) {
      scratch.indices.push_back(static_cast<std::uint32_t>(i));
      scratch.values.push_back(values[i]);
    }
  }
  if (encoded_sparse_bytes(scratch, mode) <
      encoded_dense_bytes(values.size(), mode)) {
    return encode_sparse(scratch, mode, out);
  }
  return encode_dense(values, mode, out);
}

}  // namespace sidco::comm
