// Sparse collective aggregation over decoded wire payloads.
//
// These primitives are the receive side of the codec: a parameter server (or
// each allgather participant) accumulates per-worker payloads — decoded from
// their wire buffers — into one dense mean.  The accumulation order and the
// per-element operation (`out[i] += scale * v`, fp32) are exactly those of
// tensor::aggregate_mean, so with fp32 value payloads the result is
// bit-identical to the dense reference mean of the decoded gradients.
//
// Hostile inputs are rejected, never mis-summed: encoded buffers go through
// the strict codec validation, and raw SparseGradient inputs are checked for
// canonical form (sorted unique in-range indices) before any element lands
// in the accumulator.  The check is O(k) on a payload whose accumulation is
// already O(k), so it stays on in release builds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "tensor/sparse.h"

namespace sidco::comm {

/// Throws util::CheckError unless `gradient` is canonical: index/value arity
/// match, indices strictly increasing and < dense_dim.
void check_canonical(const tensor::SparseGradient& gradient);

/// Accumulates worker payloads into a dense sum, mirroring the exact
/// float-add order of tensor::aggregate_mean.  All scratch (the dense buffer
/// and the decode staging) is reused across rounds: steady-state
/// accumulation performs zero heap allocations.
class SparseAccumulator {
 public:
  /// Starts a fresh round over `dense_dim` elements (buffer reused).
  void reset(std::size_t dense_dim);

  /// Adds `scale * part` into the dense buffer.  `part` must be canonical
  /// and share the round's dense_dim.
  void accumulate(const tensor::SparseGradient& part, float scale);

  /// Decodes an encoded sparse or dense message into internal staging and
  /// accumulates it.  Returns the decoded header summary.
  MessageInfo accumulate_encoded(std::span<const std::uint8_t> buffer,
                                 float scale);

  [[nodiscard]] std::span<const float> dense() const { return dense_; }
  [[nodiscard]] std::size_t dense_dim() const { return dense_.size(); }

 private:
  std::vector<float> dense_;
  tensor::SparseGradient staging_;
  std::vector<float> dense_staging_;
};

/// Decode-side allgather-sum: every worker receives all payloads and reduces
/// them locally to the mean (divided by `count_divisor`, typically the
/// worker count).  Bit-identical to tensor::aggregate_mean of the decoded
/// parts.  The `acc` overload reuses the accumulator's storage; the
/// convenience overload allocates the result.
void allgather_mean(std::span<const std::vector<std::uint8_t>> encoded,
                    std::size_t dense_dim, double count_divisor,
                    SparseAccumulator& acc);

std::vector<float> allgather_mean(
    std::span<const std::vector<std::uint8_t>> encoded, std::size_t dense_dim,
    double count_divisor);

}  // namespace sidco::comm
