// Versioned wire-format codec for compressed gradient exchange.
//
// Everything the dist runtime prices as "bytes on the wire" is produced by
// this codec: a compressed gradient is actually serialized into a byte
// buffer, and the buffer's size — not an analytic `k x 8` estimate — feeds
// the timing models and the scenario metrics.  Three payload kinds share one
// fixed 24-byte header:
//
//   offset size field
//   0      2    magic "SC" (0x53 0x43)
//   2      1    version (kWireVersion; decoders reject anything else)
//   3      1    kind (0 sparse, 1 dense, 2 quantized)
//   4      1    flags (bit 0: index mode, bit 1: value mode; rest zero)
//   5      1    aux (quantized: bits per symbol; otherwise zero)
//   6      2    reserved, must be zero
//   8      8    dense_dim (u64)
//   16     8    count (sparse: nnz; dense/quantized: element count)
//
// All multi-byte fields are little-endian and written byte-by-byte, so the
// encoding is identical on any host (endianness-normalized by construction).
//
// Sparse payloads carry an index section followed by a value section.  The
// encoder picks whichever index mode is smaller for the payload at hand:
//
//  - kVarintDelta: LEB128 varints — the first index raw, then successive
//    gaps minus one (indices are strictly increasing, so every gap is >= 1).
//    ~1 byte/index for dense tails, <= 5 bytes worst case.
//  - kBitmap: ceil(dense_dim / 8) bytes, bit i (LSB-first within each byte)
//    set iff index i is present.  Cheaper than varints once density exceeds
//    roughly 1/8 (exactly: when the summed varint size passes the bitmap
//    size; with single-byte gaps that is nnz > ceil(dense_dim / 8)).
//
// Values follow in ascending index order as fp32 (bit-exact) or fp16
// (round-to-nearest-even, lossy).  Dense payloads are just a value section.
// Quantized payloads (SignSGD / QSGD) carry one fp32 scale plus bit-packed
// symbols of `symbol_bits` each, LSB-first.
//
// Allocation contract: encode_* reuse the caller's output buffer and
// decode_* reuse the output gradient/vector storage, so steady-state
// encode/decode performs zero heap allocations once buffers reach their
// high-water capacity (the same contract as compressors::compress_into).
//
// Decoders are strict: wrong magic, unknown version/kind/flag bits, nonzero
// reserved bytes, truncated or oversized buffers, out-of-range or
// non-increasing indices, and bitmap popcount mismatches all throw
// util::CheckError.  A canonical (sorted, unique, in-range) SparseGradient
// is therefore the only thing a successful sparse decode can produce.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/sparse.h"

namespace sidco::comm {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;

enum class PayloadKind : std::uint8_t {
  kSparse = 0,
  kDense = 1,
  kQuantized = 2,
};

enum class IndexMode : std::uint8_t {
  kVarintDelta = 0,
  kBitmap = 1,
};

enum class ValueMode : std::uint8_t {
  kFp32 = 0,
  kFp16 = 1,
};

/// Decoded header summary returned by every decode_* call (and peek_header).
struct MessageInfo {
  PayloadKind kind = PayloadKind::kSparse;
  IndexMode index_mode = IndexMode::kVarintDelta;  ///< sparse only
  ValueMode value_mode = ValueMode::kFp32;         ///< sparse/dense only
  std::uint8_t symbol_bits = 0;                    ///< quantized only
  std::size_t dense_dim = 0;
  std::size_t count = 0;
  std::size_t encoded_bytes = 0;  ///< total message size, header included
};

/// IEEE 754 binary16 conversions (round-to-nearest-even on the way down).
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

/// Batch binary16 conversions over contiguous arrays.  Dispatched through
/// util::simd (F16C on AVX2 hosts) but bit-identical per element to the
/// scalar functions above for every input, NaNs included — the vector paths
/// canonicalize NaN exactly like float_to_half and preserve signaling-NaN
/// payloads exactly like half_to_float.
void float_to_half_n(const float* in, std::size_t n, std::uint16_t* out);
void half_to_float_n(const std::uint16_t* in, std::size_t n, float* out);

/// Exact size of the varint-delta index section for a canonical gradient.
std::size_t varint_index_bytes(const tensor::SparseGradient& gradient);

/// Size of the bitmap index section for a given dense dimension.
inline std::size_t bitmap_index_bytes(std::size_t dense_dim) {
  return (dense_dim + 7) / 8;
}

/// The encoder's mode choice: varint-delta unless the bitmap is strictly
/// smaller (ties go to varint).
IndexMode select_index_mode(const tensor::SparseGradient& gradient);

/// Bytes per value for a mode (4 for fp32, 2 for fp16).
inline std::size_t value_bytes(ValueMode mode) {
  return mode == ValueMode::kFp32 ? 4 : 2;
}

/// Serializes a canonical sparse gradient (header + auto-selected index
/// section + values) into `out`, reusing its storage.  Returns the encoded
/// size.  Throws util::CheckError when `gradient` is not canonical.
std::size_t encode_sparse(const tensor::SparseGradient& gradient,
                          ValueMode mode, std::vector<std::uint8_t>& out);

/// Decodes a sparse message into `out` (storage reused).  Returns the header
/// summary.  Strict: rejects anything that is not a well-formed version-1
/// sparse message covering the whole buffer.
MessageInfo decode_sparse(std::span<const std::uint8_t> buffer,
                          tensor::SparseGradient& out);

/// Serializes a dense value vector (header + values).  Returns encoded size.
std::size_t encode_dense(std::span<const float> values, ValueMode mode,
                         std::vector<std::uint8_t>& out);

/// Decodes a dense message into `out` (storage reused).
MessageInfo decode_dense(std::span<const std::uint8_t> buffer,
                         std::vector<float>& out);

/// A bit-packed quantized payload: `symbols[i]` in [0, 2^symbol_bits) plus
/// one fp32 scale.  SignSGD packs sign bits (symbol_bits = 1); QSGD packs
/// zigzag-coded signed levels.
struct QuantizedPayload {
  float scale = 0.0F;
  std::uint8_t symbol_bits = 1;
  std::vector<std::uint32_t> symbols;
};

/// Serializes a quantized payload (header + scale + packed symbols).
std::size_t encode_quantized(const QuantizedPayload& payload,
                             std::vector<std::uint8_t>& out);

/// Decodes a quantized message into `out` (storage reused).
MessageInfo decode_quantized(std::span<const std::uint8_t> buffer,
                             QuantizedPayload& out);

/// Parses and validates only the 24-byte header (any kind).
MessageInfo peek_header(std::span<const std::uint8_t> buffer);

/// Encoded size of a sparse gradient without materializing the bytes
/// (header + min(varint, bitmap) + values).
std::size_t encoded_sparse_bytes(const tensor::SparseGradient& gradient,
                                 ValueMode mode);

/// Encoded size of a dense payload of `n` values.
inline std::size_t encoded_dense_bytes(std::size_t n, ValueMode mode) {
  return kHeaderBytes + n * value_bytes(mode);
}

/// Serializes a canonical sparse gradient as whichever message is smaller.
/// When it covers every coordinate (nnz == dense_dim) its value array IS the
/// dense vector, and a dense message always beats paying for indices; a
/// partial gradient encodes sparse.  This is the worker-push entry point.
std::size_t encode_gradient(const tensor::SparseGradient& gradient,
                            ValueMode mode, std::vector<std::uint8_t>& out);

/// Serializes a dense vector as whichever message is smaller: a dense
/// message, or a sparse message over its nonzero support.  `scratch` stages
/// the sparse candidate (storage reused).  This is the aggregated-update
/// (server-pull) entry point — the honest place where aggregation-side
/// densification shows up as bytes.
std::size_t encode_dense_or_sparse(std::span<const float> values,
                                   ValueMode mode,
                                   tensor::SparseGradient& scratch,
                                   std::vector<std::uint8_t>& out);

}  // namespace sidco::comm
