#include "comm/aggregate.h"

#include "util/check.h"

namespace sidco::comm {

void check_canonical(const tensor::SparseGradient& gradient) {
  // One authoritative definition of canonical form lives on SparseGradient.
  util::check(gradient.is_canonical(),
              "aggregate: sparse payload is not canonical (sorted unique "
              "in-range indices required)");
}

void SparseAccumulator::reset(std::size_t dense_dim) {
  dense_.assign(dense_dim, 0.0F);
}

void SparseAccumulator::accumulate(const tensor::SparseGradient& part,
                                   float scale) {
  util::check(part.dense_dim == dense_.size(),
              "aggregate: part dense_dim mismatch");
  check_canonical(part);
  // Same element op and order as tensor::SparseGradient::add_to — the
  // bit-identity contract with the dense reference mean rests on this.
  for (std::size_t j = 0; j < part.indices.size(); ++j) {
    dense_[part.indices[j]] += scale * part.values[j];
  }
}

MessageInfo SparseAccumulator::accumulate_encoded(
    std::span<const std::uint8_t> buffer, float scale) {
  const MessageInfo header = peek_header(buffer);
  if (header.kind == PayloadKind::kDense) {
    const MessageInfo info = decode_dense(buffer, dense_staging_);
    util::check(info.dense_dim == dense_.size(),
                "aggregate: dense payload dimension mismatch");
    for (std::size_t i = 0; i < dense_staging_.size(); ++i) {
      dense_[i] += scale * dense_staging_[i];
    }
    return info;
  }
  // decode_sparse guarantees canonical output (and rejects anything else),
  // so the canonical re-check in accumulate() only guards raw callers.
  const MessageInfo info = decode_sparse(buffer, staging_);
  accumulate(staging_, scale);
  return info;
}

void allgather_mean(std::span<const std::vector<std::uint8_t>> encoded,
                    std::size_t dense_dim, double count_divisor,
                    SparseAccumulator& acc) {
  util::check(count_divisor > 0.0, "aggregate: divisor must be positive");
  acc.reset(dense_dim);
  const auto scale = static_cast<float>(1.0 / count_divisor);
  for (const std::vector<std::uint8_t>& buffer : encoded) {
    acc.accumulate_encoded(buffer, scale);
  }
}

std::vector<float> allgather_mean(
    std::span<const std::vector<std::uint8_t>> encoded, std::size_t dense_dim,
    double count_divisor) {
  SparseAccumulator acc;
  allgather_mean(encoded, dense_dim, count_divisor, acc);
  return std::vector<float>(acc.dense().begin(), acc.dense().end());
}

}  // namespace sidco::comm
