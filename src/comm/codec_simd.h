// Internal dispatched fast paths for the wire codec's hot loops.
//
// Each function has a scalar reference implementation (the loops the codec
// shipped with, byte-for-byte) plus SWAR / AVX2 fast paths selected by the
// util::simd::Level argument.  Contract: every level produces byte-identical
// encodes and bit-identical decodes, including every error (same
// util::CheckError message on the same hostile buffer).  Fast paths engage
// only on regular spans (e.g. eight continuation-free varint bytes) and hand
// anything irregular — tails, multi-byte varints, truncation — to the scalar
// reference, so strictness is inherited rather than re-implemented.
// tests/test_simd_kernels.cpp enforces the contract under every level
// available on the host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.h"

namespace sidco::comm::detail {

/// Writes the varint-delta index section (first index raw, then gaps minus
/// one) for strictly increasing `indices` at `dst`, which must hold exactly
/// varint_index_bytes(...) bytes.
void encode_varint_deltas(util::simd::Level level,
                          std::span<const std::uint32_t> indices,
                          std::uint8_t* dst);

/// Decodes `count` varint deltas from `buf` at `pos` (advanced past them),
/// appending reconstructed indices to `out`.  Throws the scalar loop's
/// CheckErrors (truncated/overlong/range) on hostile input.
void decode_varint_deltas(util::simd::Level level,
                          std::span<const std::uint8_t> buf, std::size_t& pos,
                          std::size_t count, std::size_t dense_dim,
                          std::vector<std::uint32_t>& out);

/// Sets bit `index` (LSB-first per byte) for every index into the zeroed
/// `bitmap` of `bitmap_bytes` bytes.  Indices must be sorted ascending.
void build_bitmap(util::simd::Level level,
                  std::span<const std::uint32_t> indices, std::uint8_t* bitmap,
                  std::size_t bitmap_bytes);

/// Appends the position of every set bit (ascending) to `out`, checking each
/// against `dense_dim` with the scalar loop's error message.  The caller
/// still owns the population-vs-nnz check.
void scan_bitmap(util::simd::Level level, const std::uint8_t* bitmap,
                 std::size_t bitmap_bytes, std::size_t dense_dim,
                 std::vector<std::uint32_t>& out);

/// Batch fp16 conversion into / out of an unaligned little-endian byte
/// stream.  Bit-identical per element to float_to_half / half_to_float at
/// every level (NaN canonicalization included).
void float_to_half_bytes(util::simd::Level level, const float* in,
                         std::size_t n, std::uint8_t* dst);
void half_to_float_bytes(util::simd::Level level, const std::uint8_t* src,
                         std::size_t n, float* dst);

/// Bit-packs `symbols` (LSB-first, `symbol_bits` each) into the zeroed
/// `dst`, validating each symbol against the mode's range with the scalar
/// loop's error message.
void pack_symbols(util::simd::Level level,
                  std::span<const std::uint32_t> symbols,
                  std::size_t symbol_bits, std::uint8_t* dst);

/// Unpacks `count` symbols of `symbol_bits` each from `src`, appending to
/// `out`.  `src` must hold ceil(count * symbol_bits / 8) bytes.
void unpack_symbols(util::simd::Level level, const std::uint8_t* src,
                    std::size_t count, std::size_t symbol_bits,
                    std::vector<std::uint32_t>& out);

}  // namespace sidco::comm::detail
