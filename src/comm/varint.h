// LEB128 varint helpers shared by the codec and its SIMD fast paths.
//
// Index varints are bounded to the u32 range and STRICT on the decode side:
// exactly one byte string represents each value.  Non-minimal (overlong)
// encodings such as 0x80 0x00 and final-byte bits beyond 2^32-1 are
// rejected, so "a successful decode yields exactly one canonical byte form"
// holds at the varint layer, not just at the index-monotonicity layer above.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace sidco::comm::detail {

inline constexpr std::size_t kMaxIndexVarintBytes = 5;  // u32 range

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80U);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Pointer-cursor variant for pre-sized index sections; emits the same bytes
/// as put_varint and returns the advanced cursor.
inline std::uint8_t* put_varint_at(std::uint8_t* dst, std::uint64_t v) {
  while (v >= 0x80) {
    *dst++ = static_cast<std::uint8_t>(v) | 0x80U;
    v >>= 7;
  }
  *dst++ = static_cast<std::uint8_t>(v);
  return dst;
}

/// Reads one index varint at `pos` (advanced past it).  Bounded to the u32
/// range so hostile length prefixes cannot drive unbounded reads or
/// accumulator overflow downstream.  Strict: rejects overlong encodings and
/// final-byte payload bits above bit 31.
inline std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                                std::size_t& pos) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < kMaxIndexVarintBytes; ++i) {
    util::check(pos < buf.size(), "wire: truncated varint");
    const std::uint8_t byte = buf[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80U) == 0) {
      // A final byte of 0x00 after a continuation byte is a non-minimal
      // encoding (0x80 0x00 would alias plain 0x00): two byte strings must
      // never decode to the same value.
      util::check(i == 0 || byte != 0, "wire: overlong varint");
      // The 5th byte carries bits 28..34, but only 28..31 fit in the u32
      // index range — values in (2^32, 2^35) must fail here, not later (or
      // never) in delta accumulation.
      util::check(i + 1 < kMaxIndexVarintBytes || (byte & 0xF0U) == 0,
                  "wire: varint exceeds the u32 index range");
      return v;
    }
  }
  util::check_fail("wire: varint exceeds index range");
}

}  // namespace sidco::comm::detail
