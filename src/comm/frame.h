// Length-prefixed frame header for socket transports (runtime module).
//
// The comm codec (codec.h) defines what a gradient payload *is*; this header
// defines how one message is delimited on a byte stream that has no message
// boundaries of its own (a TCP or Unix-domain socket).  Every frame is a
// fixed 24-byte header followed by `body_len` opaque body bytes — for
// gradient traffic the body is the exact codec buffer, byte for byte, so
// framing adds delimitation without re-encoding anything:
//
//   offset size field
//   0      4    magic 0x53464d31 ("1MFS" on the wire, little-endian)
//   4      2    version (kFrameVersion; decoders reject anything else)
//   6      1    kind (transport message kind; opaque to the framing layer)
//   7      1    reserved, must be zero
//   8      2    from (sender endpoint id)
//   10     2    reserved, must be zero
//   12     4    body_len (bytes following the header, <= kMaxFrameBody)
//   16     8    seq (sender-assigned sequence / iteration tag)
//
// All fields are little-endian and written byte-by-byte, the same
// endianness-normalization-by-construction contract as the codec header.
//
// Decoding is strict: a short buffer, wrong magic, unknown version, nonzero
// reserved bytes, or a body_len beyond kMaxFrameBody throws util::CheckError
// with a descriptive message.  A receiver therefore fails fast on a corrupt
// or hostile stream instead of mis-framing it — the transport layer turns
// that into a session error rather than a hang.
//
// The put_*/get_* helpers are exported so transport-level message
// serializers (runtime/topology.cpp) reuse the exact same little-endian
// primitives instead of growing private copies.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace sidco::comm {

inline constexpr std::uint32_t kFrameMagic = 0x53464d31;  // "1MFS" LE
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

// Frame kinds 0xE0..0xFF are reserved for transport-internal protocols and
// never reach the topology layer: 0 is the socket handshake hello
// (socket_transport.cpp), the application kinds of runtime/topology.h start
// at 1, and the reliable-delivery decorator (runtime/reliable.h) uses the
// constants below for its envelope/ack/liveness traffic.
inline constexpr std::uint8_t kReliableDataKind = 0xF0;  ///< crc+orig envelope
inline constexpr std::uint8_t kReliableAckKind = 0xF1;   ///< seq = acked rseq
inline constexpr std::uint8_t kHeartbeatKind = 0xF2;     ///< liveness beacon
inline constexpr std::uint8_t kByeKind = 0xF3;           ///< clean-close fence
inline constexpr std::uint8_t kReservedKindBase = 0xE0;  ///< first reserved
/// Upper bound on a frame body.  Far above any real gradient payload (the
/// proxy models are a few hundred KiB encoded); its job is to make a corrupt
/// length field fail fast instead of asking the receiver to buffer gigabytes.
inline constexpr std::size_t kMaxFrameBody = std::size_t{1} << 30;

/// Little-endian scalar append/read primitives shared by the frame codec and
/// the transport message serializers.
inline void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Doubles cross the wire as their IEEE 754 bit pattern: bit-exact by
/// construction, which the cross-engine bit-identity contracts rely on.
inline void put_f64_le(std::vector<std::uint8_t>& out, double v) {
  put_u64_le(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_f32_le(std::vector<std::uint8_t>& out, float v) {
  put_u32_le(out, std::bit_cast<std::uint32_t>(v));
}

// -- Sequence-number arithmetic ---------------------------------------------
//
// The frame `seq` field is a free-running 64-bit counter with *serial number
// arithmetic* semantics (RFC 1982): values compare modulo 2^64, so a counter
// that wraps past 2^64-1 keeps ordering correctly as long as two live
// sequence numbers are never more than 2^63 apart — unreachable in practice,
// and the ack/retransmission layer keeps at most a small window in flight.
// Every consumer that orders or diffs seq values MUST use these helpers
// instead of raw `<` / `-`, or a long session that wraps would misinterpret
// sequence reuse.

/// True when `a` precedes `b` in serial order (modulo 2^64).  Neither total
/// nor antisymmetric at the exact antipode (distance 2^63) — callers keep
/// live windows far smaller than that.
[[nodiscard]] constexpr bool seq_less(std::uint64_t a, std::uint64_t b) {
  return a != b && (b - a) < (std::uint64_t{1} << 63);
}

/// Forward distance from `a` to `b` modulo 2^64 (0 when equal).  Well-defined
/// through wraparound: seq_distance(2^64 - 1, 1) == 2.
[[nodiscard]] constexpr std::uint64_t seq_distance(std::uint64_t a,
                                                   std::uint64_t b) {
  return b - a;
}

/// FNV-1a 32-bit hash, used by the reliable-delivery decorator as a payload
/// checksum (detects injected/real corruption before a frame is acked).  Not
/// cryptographic — an integrity fingerprint, not an authenticator.
[[nodiscard]] std::uint32_t fnv1a32(std::span<const std::uint8_t> bytes);

std::uint16_t get_u16_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos);
std::uint32_t get_u32_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos);
std::uint64_t get_u64_le(std::span<const std::uint8_t> buffer,
                         std::size_t pos);
double get_f64_le(std::span<const std::uint8_t> buffer, std::size_t pos);
float get_f32_le(std::span<const std::uint8_t> buffer, std::size_t pos);

/// Parsed frame header (everything except the body bytes themselves).
struct FrameHeader {
  std::uint8_t kind = 0;
  std::uint16_t from = 0;
  std::uint64_t seq = 0;
  std::size_t body_len = 0;
};

/// Serializes a frame header.  Throws util::CheckError when body_len exceeds
/// kMaxFrameBody (a sender must never emit a frame its peers would reject).
std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    const FrameHeader& header);

/// Appends header + body to `out` as one contiguous frame.
void encode_frame(const FrameHeader& header,
                  std::span<const std::uint8_t> body,
                  std::vector<std::uint8_t>& out);

/// Strictly parses the frame header at the front of `buffer` (which may hold
/// more bytes — the body, further frames).  Throws util::CheckError on a
/// buffer shorter than kFrameHeaderBytes, wrong magic, unknown version,
/// nonzero reserved bytes, or an oversized body_len.
FrameHeader decode_frame_header(std::span<const std::uint8_t> buffer);

}  // namespace sidco::comm
