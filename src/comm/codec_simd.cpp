#include "comm/codec_simd.h"

#include <bit>
#include <cstring>

#include "comm/codec.h"
#include "comm/varint.h"
#include "util/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SIDCO_SIMD_X86 1
#endif

namespace sidco::comm::detail {

namespace {

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

// ---------------------------------------------------------------------------
// Varint-delta index section.
// ---------------------------------------------------------------------------

/// Scalar reference: the original encode loop, cursor-based.
void encode_varint_deltas_scalar(std::span<const std::uint32_t> indices,
                                 std::uint8_t* dst) {
  std::uint32_t prev = 0;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const std::uint64_t delta =
        j == 0 ? indices[0]
               : static_cast<std::uint64_t>(indices[j]) - prev - 1;
    dst = put_varint_at(dst, delta);
    prev = indices[j];
  }
}

/// SWAR fast path: eight gaps that all fit single-byte varints are emitted
/// as one u64 store (a single-byte varint IS the delta byte).  Irregular
/// groups fall back to the reference emitter, so the byte stream is
/// identical by construction.
void encode_varint_deltas_fast(std::span<const std::uint32_t> indices,
                               std::uint8_t* dst) {
  if (indices.empty()) return;
  dst = put_varint_at(dst, indices[0]);
  std::uint32_t prev = indices[0];
  std::size_t j = 1;
  while (j + 8 <= indices.size()) {
    std::uint64_t w = 0;
    bool small = true;
    std::uint32_t p = prev;
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint32_t d = indices[j + k] - p - 1;
      small &= d < 0x80U;
      w |= static_cast<std::uint64_t>(d & 0x7FU) << (8 * k);
      p = indices[j + k];
    }
    if (small) {
      std::memcpy(dst, &w, 8);
      dst += 8;
    } else {
      for (std::size_t k = 0; k < 8; ++k) {
        dst = put_varint_at(
            dst, static_cast<std::uint64_t>(indices[j + k]) - prev - 1);
        prev = indices[j + k];
      }
    }
    prev = p;
    j += 8;
  }
  for (; j < indices.size(); ++j) {
    dst = put_varint_at(dst,
                        static_cast<std::uint64_t>(indices[j]) - prev - 1);
    prev = indices[j];
  }
}

/// Scalar reference: the original decode loop.
void decode_varint_deltas_scalar(std::span<const std::uint8_t> buf,
                                 std::size_t& pos, std::size_t j,
                                 std::size_t count, std::size_t dense_dim,
                                 std::uint64_t prev,
                                 std::vector<std::uint32_t>& out) {
  for (; j < count; ++j) {
    const std::uint64_t delta = get_varint(buf, pos);
    const std::uint64_t index = j == 0 ? delta : prev + 1 + delta;
    util::check(index < dense_dim, "wire: sparse index out of range");
    out.push_back(static_cast<std::uint32_t>(index));
    prev = index;
  }
}

/// SWAR fast path: a u64 load whose continuation mask is clear is eight
/// single-byte varints.  Indices are strictly increasing, so only the last
/// of the eight needs the range check — if any earlier one were out of
/// range, the last would be too, and the scalar loop's error fires with the
/// same message.  Anything irregular (continuation bytes, the j == 0 raw
/// index, fewer than 8 bytes left) goes through get_varint, inheriting the
/// strict truncation/overlong/range errors.
void decode_varint_deltas_fast(std::span<const std::uint8_t> buf,
                               std::size_t& pos, std::size_t count,
                               std::size_t dense_dim,
                               std::vector<std::uint32_t>& out) {
  std::size_t j = 0;
  std::uint64_t prev = 0;
  if (count > 0) {
    const std::uint64_t first = get_varint(buf, pos);
    util::check(first < dense_dim, "wire: sparse index out of range");
    out.push_back(static_cast<std::uint32_t>(first));
    prev = first;
    j = 1;
  }
  while (j + 8 <= count && pos + 8 <= buf.size()) {
    std::uint64_t w;
    std::memcpy(&w, buf.data() + pos, 8);
    if ((w & 0x8080808080808080ULL) != 0) {
      const std::uint64_t delta = get_varint(buf, pos);
      const std::uint64_t index = prev + 1 + delta;
      util::check(index < dense_dim, "wire: sparse index out of range");
      out.push_back(static_cast<std::uint32_t>(index));
      prev = index;
      ++j;
      continue;
    }
    std::uint64_t idx = prev;
    std::uint32_t tmp[8];
    for (std::size_t k = 0; k < 8; ++k) {
      idx += 1 + ((w >> (8 * k)) & 0x7FU);
      tmp[k] = static_cast<std::uint32_t>(idx);
    }
    util::check(idx < dense_dim, "wire: sparse index out of range");
    out.insert(out.end(), tmp, tmp + 8);
    pos += 8;
    prev = idx;
    j += 8;
  }
  decode_varint_deltas_scalar(buf, pos, j, count, dense_dim, prev, out);
}

// ---------------------------------------------------------------------------
// Bitmap index section.
// ---------------------------------------------------------------------------

void build_bitmap_scalar(std::span<const std::uint32_t> indices,
                         std::uint8_t* bitmap) {
  for (std::uint32_t index : indices) {
    bitmap[index / 8] |= static_cast<std::uint8_t>(1U << (index % 8));
  }
}

/// Sorted indices land in runs within the same 64-bit word; accumulating a
/// word in a register and flushing once per word-change cuts the
/// read-modify-write traffic 8x at bitmap-worthy densities.
void build_bitmap_fast(std::span<const std::uint32_t> indices,
                       std::uint8_t* bitmap, std::size_t bitmap_bytes) {
  if (indices.empty()) return;
  std::uint64_t word = 0;
  std::size_t cur = indices[0] >> 6;
  const auto flush = [&](std::size_t w) {
    const std::size_t at = w * 8;
    const std::size_t len = std::min<std::size_t>(8, bitmap_bytes - at);
    std::memcpy(bitmap + at, &word, len);
  };
  for (std::uint32_t index : indices) {
    const std::size_t w = index >> 6;
    if (w != cur) {
      flush(cur);
      word = 0;
      cur = w;
    }
    word |= 1ULL << (index & 63U);
  }
  flush(cur);
}

void scan_bitmap_scalar(const std::uint8_t* bitmap, std::size_t byte,
                        std::size_t bitmap_bytes, std::size_t dense_dim,
                        std::vector<std::uint32_t>& out) {
  for (; byte < bitmap_bytes; ++byte) {
    const std::uint8_t bits = bitmap[byte];
    if (bits == 0) continue;
    for (std::size_t bit = 0; bit < 8; ++bit) {
      if ((bits & (1U << bit)) == 0) continue;
      const std::size_t index = byte * 8 + bit;
      util::check(index < dense_dim, "wire: bitmap bit beyond dense_dim");
      out.push_back(static_cast<std::uint32_t>(index));
    }
  }
}

/// Word-at-a-time scan: countr_zero walks set bits in exactly the scalar
/// LSB-first order (little-endian u64 load maps byte k to bits 8k..8k+7).
void scan_bitmap_fast(const std::uint8_t* bitmap, std::size_t bitmap_bytes,
                      std::size_t dense_dim, std::vector<std::uint32_t>& out) {
  std::size_t byte = 0;
  for (; byte + 8 <= bitmap_bytes; byte += 8) {
    std::uint64_t w;
    std::memcpy(&w, bitmap + byte, 8);
    while (w != 0) {
      const std::size_t index =
          byte * 8 + static_cast<std::size_t>(std::countr_zero(w));
      util::check(index < dense_dim, "wire: bitmap bit beyond dense_dim");
      out.push_back(static_cast<std::uint32_t>(index));
      w &= w - 1;
    }
  }
  scan_bitmap_scalar(bitmap, byte, bitmap_bytes, dense_dim, out);
}

// ---------------------------------------------------------------------------
// fp16 value section.  The AVX2 path uses the F16C conversion unit, which is
// IEEE RNE like the scalar reference, with one divergence each way around
// NaN: the scalar down-convert canonicalizes every NaN to sign|0x7E00, and
// the hardware up-convert quietizes signaling NaNs.  Both are fixed up on
// the (rare) lanes involved, so all 2^16 half patterns and all float
// patterns convert bit-identically to the scalar reference — the exhaustive
// sweep in test_codec_fuzz holds at every level.
// ---------------------------------------------------------------------------

void float_to_half_scalar(const float* in, std::size_t n, std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t h = float_to_half(in[i]);
    dst[2 * i] = static_cast<std::uint8_t>(h & 0xFF);
    dst[2 * i + 1] = static_cast<std::uint8_t>(h >> 8);
  }
}

void half_to_float_scalar(const std::uint8_t* src, std::size_t n,
                          float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = half_to_float(
        static_cast<std::uint16_t>(src[2 * i] | (src[2 * i + 1] << 8)));
  }
}

#if defined(SIDCO_SIMD_X86)

bool has_f16c() {
  static const bool value = __builtin_cpu_supports("f16c");
  return value;
}

__attribute__((target("avx2,f16c"))) void float_to_half_avx2(
    const float* in, std::size_t n, std::uint8_t* dst) {
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    const __m128i h =
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256i bits = _mm256_castps_si256(v);
    const __m256i is_nan =
        _mm256_cmpgt_epi32(_mm256_and_si256(bits, abs_mask), exp_mask);
    if (_mm256_movemask_epi8(is_nan) != 0) [[unlikely]] {
      std::uint16_t hh[8];
      std::uint32_t bb[8];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(hh), h);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(bb), bits);
      for (std::size_t k = 0; k < 8; ++k) {
        if ((bb[k] & 0x7FFFFFFFU) > 0x7F800000U) {
          hh[k] = static_cast<std::uint16_t>(((bb[k] >> 16) & 0x8000U) |
                                             0x7E00U);
        }
      }
      std::memcpy(dst + 2 * i, hh, 16);
    } else {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * i), h);
    }
  }
  float_to_half_scalar(in + i, n - i, dst + 2 * i);
}

__attribute__((target("avx2,f16c"))) void half_to_float_avx2(
    const std::uint8_t* src, std::size_t n, float* dst) {
  const __m128i habs_mask = _mm_set1_epi16(0x7FFF);
  const __m128i hexp = _mm_set1_epi16(0x7C00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * i));
    const __m128i is_nan =
        _mm_cmpgt_epi16(_mm_and_si128(h, habs_mask), hexp);
    if (_mm_movemask_epi8(is_nan) != 0) [[unlikely]] {
      half_to_float_scalar(src + 2 * i, 8, dst + i);
    } else {
      _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
  }
  half_to_float_scalar(src + 2 * i, n - i, dst + i);
}

#endif  // SIDCO_SIMD_X86

// ---------------------------------------------------------------------------
// Bit-packed quantized symbols.
// ---------------------------------------------------------------------------

std::uint64_t symbol_mask(std::size_t symbol_bits) {
  return symbol_bits == 64 ? ~0ULL : (1ULL << symbol_bits) - 1;
}

void pack_symbols_scalar(std::span<const std::uint32_t> symbols,
                         std::size_t symbol_bits, std::uint8_t* dst) {
  const std::uint64_t mask = symbol_mask(symbol_bits);
  std::size_t bit_pos = 0;
  for (std::uint32_t symbol : symbols) {
    util::check((symbol & ~mask) == 0, "wire: symbol exceeds symbol_bits");
    std::uint64_t v = symbol;
    std::size_t bits_left = symbol_bits;
    while (bits_left > 0) {
      const std::size_t byte = bit_pos / 8;
      const std::size_t offset = bit_pos % 8;
      const std::size_t take = std::min<std::size_t>(8 - offset, bits_left);
      dst[byte] |= static_cast<std::uint8_t>((v & ((1ULL << take) - 1))
                                             << offset);
      v >>= take;
      bit_pos += take;
      bits_left -= take;
    }
  }
}

/// SWAR bit buffer: symbols are ORed into a u64 accumulator LSB-first and
/// whole bytes stream out, replacing the per-symbol inner loop.  The stream
/// is LSB-first either way, so the bytes are identical by construction.
void pack_symbols_fast(std::span<const std::uint32_t> symbols,
                       std::size_t symbol_bits, std::uint8_t* dst) {
  const std::uint64_t mask = symbol_mask(symbol_bits);
  std::uint64_t acc = 0;
  std::size_t acc_bits = 0;
  for (std::uint32_t symbol : symbols) {
    util::check((symbol & ~mask) == 0, "wire: symbol exceeds symbol_bits");
    acc |= static_cast<std::uint64_t>(symbol) << acc_bits;
    acc_bits += symbol_bits;
    while (acc_bits >= 8) {
      *dst++ = static_cast<std::uint8_t>(acc & 0xFFU);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) *dst = static_cast<std::uint8_t>(acc & 0xFFU);
}

void unpack_symbols_scalar(const std::uint8_t* src, std::size_t count,
                           std::size_t symbol_bits,
                           std::vector<std::uint32_t>& out) {
  std::size_t bit_pos = 0;
  for (std::size_t j = 0; j < count; ++j) {
    std::uint64_t v = 0;
    std::size_t got = 0;
    while (got < symbol_bits) {
      const std::size_t byte = bit_pos / 8;
      const std::size_t offset = bit_pos % 8;
      const std::size_t take =
          std::min<std::size_t>(8 - offset, symbol_bits - got);
      v |= (static_cast<std::uint64_t>(src[byte] >> offset) &
            ((1ULL << take) - 1))
           << got;
      got += take;
      bit_pos += take;
    }
    out.push_back(static_cast<std::uint32_t>(v));
  }
}

void unpack_symbols_fast(const std::uint8_t* src, std::size_t count,
                         std::size_t symbol_bits,
                         std::vector<std::uint32_t>& out) {
  const std::uint64_t mask = symbol_mask(symbol_bits);
  std::uint64_t acc = 0;
  std::size_t acc_bits = 0;
  for (std::size_t j = 0; j < count; ++j) {
    while (acc_bits < symbol_bits) {
      acc |= static_cast<std::uint64_t>(*src++) << acc_bits;
      acc_bits += 8;
    }
    out.push_back(static_cast<std::uint32_t>(acc & mask));
    acc >>= symbol_bits;
    acc_bits -= symbol_bits;
  }
}

}  // namespace

void encode_varint_deltas(util::simd::Level level,
                          std::span<const std::uint32_t> indices,
                          std::uint8_t* dst) {
  if constexpr (kLittleEndian) {
    if (level != util::simd::Level::kScalar) {
      encode_varint_deltas_fast(indices, dst);
      return;
    }
  }
  encode_varint_deltas_scalar(indices, dst);
}

void decode_varint_deltas(util::simd::Level level,
                          std::span<const std::uint8_t> buf, std::size_t& pos,
                          std::size_t count, std::size_t dense_dim,
                          std::vector<std::uint32_t>& out) {
  if constexpr (kLittleEndian) {
    if (level != util::simd::Level::kScalar) {
      decode_varint_deltas_fast(buf, pos, count, dense_dim, out);
      return;
    }
  }
  decode_varint_deltas_scalar(buf, pos, 0, count, dense_dim, 0, out);
}

void build_bitmap(util::simd::Level level,
                  std::span<const std::uint32_t> indices, std::uint8_t* bitmap,
                  std::size_t bitmap_bytes) {
  if constexpr (kLittleEndian) {
    if (level != util::simd::Level::kScalar) {
      build_bitmap_fast(indices, bitmap, bitmap_bytes);
      return;
    }
  }
  (void)bitmap_bytes;
  build_bitmap_scalar(indices, bitmap);
}

void scan_bitmap(util::simd::Level level, const std::uint8_t* bitmap,
                 std::size_t bitmap_bytes, std::size_t dense_dim,
                 std::vector<std::uint32_t>& out) {
  if constexpr (kLittleEndian) {
    if (level != util::simd::Level::kScalar) {
      scan_bitmap_fast(bitmap, bitmap_bytes, dense_dim, out);
      return;
    }
  }
  scan_bitmap_scalar(bitmap, 0, bitmap_bytes, dense_dim, out);
}

void float_to_half_bytes(util::simd::Level level, const float* in,
                         std::size_t n, std::uint8_t* dst) {
#if defined(SIDCO_SIMD_X86)
  if (level == util::simd::Level::kAvx2 && has_f16c()) {
    float_to_half_avx2(in, n, dst);
    return;
  }
#endif
  (void)level;
  float_to_half_scalar(in, n, dst);
}

void half_to_float_bytes(util::simd::Level level, const std::uint8_t* src,
                         std::size_t n, float* dst) {
#if defined(SIDCO_SIMD_X86)
  if (level == util::simd::Level::kAvx2 && has_f16c()) {
    half_to_float_avx2(src, n, dst);
    return;
  }
#endif
  (void)level;
  half_to_float_scalar(src, n, dst);
}

void pack_symbols(util::simd::Level level,
                  std::span<const std::uint32_t> symbols,
                  std::size_t symbol_bits, std::uint8_t* dst) {
  if (level != util::simd::Level::kScalar) {
    pack_symbols_fast(symbols, symbol_bits, dst);
    return;
  }
  pack_symbols_scalar(symbols, symbol_bits, dst);
}

void unpack_symbols(util::simd::Level level, const std::uint8_t* src,
                    std::size_t count, std::size_t symbol_bits,
                    std::vector<std::uint32_t>& out) {
  if (level != util::simd::Level::kScalar) {
    unpack_symbols_fast(src, count, symbol_bits, out);
    return;
  }
  unpack_symbols_scalar(src, count, symbol_bits, out);
}

}  // namespace sidco::comm::detail
